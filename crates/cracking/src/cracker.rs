//! The cracker column: the query-facing, incrementally reorganized copy of a
//! base column.

use std::ops::Range;
use std::sync::Arc;

use rand::Rng;

use holistic_storage::{Column, PrefixSums};

use crate::index::PieceIndex;
use crate::kernels::{CrackKernel, KernelChoice, KernelDispatches};
use crate::piece::Piece;
use crate::{RowId, Value};

/// The sorted, deduplicated pivot set of a batch of range bounds: both
/// bounds of every non-degenerate `[lo, hi)` pair, each value once. Shared
/// by the batch select and the batched stochastic policies so the two
/// sites can never drift on which bounds count as the batch's pivots.
pub(crate) fn dedup_batch_pivots(bounds: &[(Value, Value)]) -> Vec<Value> {
    let mut pivots: Vec<Value> = bounds
        .iter()
        .filter(|&&(lo, hi)| hi > lo)
        .flat_map(|&(lo, hi)| [lo, hi])
        .collect();
    pivots.sort_unstable();
    pivots.dedup();
    pivots
}

/// The outcome of composing a range aggregate from the per-piece cache:
/// count, sum, and how the sum was produced (cached whole pieces,
/// prefix-sum differences, or scanned fallback pieces).
/// `scanned_values == 0` means the aggregate was answered without a single
/// data-array read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeAggregate {
    /// Number of positions in the range.
    pub count: u64,
    /// Sum of the values in the range.
    pub sum: i128,
    /// Pieces whose cached sum was used (no data touched).
    pub cached_pieces: usize,
    /// Pieces answered by a prefix-sum difference — partial overlaps of
    /// sorted pieces, still no data touched.
    pub prefix_pieces: usize,
    /// Pieces that had to be scanned (no cached sum or prefix).
    pub scanned_pieces: usize,
    /// Data values read by the scan fallback (0 = pure metadata answer).
    pub scanned_values: u64,
}

/// A cracker column.
///
/// Created as a copy of a base column the first time the column is queried
/// (or eagerly by the holistic kernel's idle-time tuner), then physically
/// reorganized a little more by every range select and by every auxiliary
/// refinement action. The accompanying [`PieceIndex`] records the boundaries
/// produced so far.
///
/// When `rowids` are kept, the original row of every value is carried along
/// through all reorganizations, so projections of other attributes remain
/// possible after cracking (the column-store tuple-reconstruction path).
#[derive(Debug, Clone)]
pub struct CrackerColumn {
    data: Vec<Value>,
    rowids: Option<Vec<RowId>>,
    index: PieceIndex,
    cracks_performed: u64,
    kernel: CrackKernel,
    dispatches: KernelDispatches,
}

impl CrackerColumn {
    /// Creates a cracker column from raw values, without row ids.
    #[must_use]
    pub fn from_values(values: Vec<Value>) -> Self {
        let len = values.len();
        CrackerColumn {
            data: values,
            rowids: None,
            index: PieceIndex::new(len),
            cracks_performed: 0,
            kernel: CrackKernel::default(),
            dispatches: KernelDispatches::default(),
        }
    }

    /// Creates a cracker column from raw values, carrying row ids
    /// `0..values.len()` for tuple reconstruction.
    #[must_use]
    pub fn from_values_with_rowids(values: Vec<Value>) -> Self {
        let len = values.len();
        CrackerColumn {
            rowids: Some((0..len as u32).collect()),
            data: values,
            index: PieceIndex::new(len),
            cracks_performed: 0,
            kernel: CrackKernel::default(),
            dispatches: KernelDispatches::default(),
        }
    }

    /// Creates a cracker column from raw values, carrying row ids
    /// `offset..offset + values.len()`. This is the shard constructor:
    /// shard `k` of a column with fixed extent `E` holds the base rows
    /// `k·E..` and must label them with their *global* row ids so tuple
    /// reconstruction composes across shards.
    #[must_use]
    pub fn from_values_with_rowid_offset(values: Vec<Value>, offset: RowId) -> Self {
        let len = values.len();
        CrackerColumn {
            rowids: Some((offset..offset + len as u32).collect()),
            data: values,
            index: PieceIndex::new(len),
            cracks_performed: 0,
            kernel: CrackKernel::default(),
            dispatches: KernelDispatches::default(),
        }
    }

    /// Sets the kernel dispatch policy (builder style).
    #[must_use]
    pub fn with_kernel(mut self, kernel: CrackKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the kernel dispatch policy.
    pub fn set_kernel(&mut self, kernel: CrackKernel) {
        self.kernel = kernel;
    }

    /// The active kernel dispatch policy.
    #[must_use]
    pub fn kernel(&self) -> CrackKernel {
        self.kernel
    }

    /// Running totals of kernel dispatches, split by physical form.
    #[must_use]
    pub fn kernel_dispatches(&self) -> KernelDispatches {
        self.dispatches
    }

    /// Creates a cracker column by copying a base [`Column`].
    #[must_use]
    pub fn from_column(column: &Column, with_rowids: bool) -> Self {
        if with_rowids {
            Self::from_values_with_rowids(column.values().to_vec())
        } else {
            Self::from_values(column.values().to_vec())
        }
    }

    /// Reassembles a cracker column from recovered parts (the snapshot
    /// decode path). Returns `None` unless the full set of invariants
    /// holds — [`CrackerColumn::validate`] is run over the recovered
    /// state, so every piece's bounds, sorted flag, cached sum and prefix
    /// array are checked against the actual data before the column is
    /// trusted.
    #[must_use]
    pub fn from_parts(
        data: Vec<Value>,
        rowids: Option<Vec<RowId>>,
        index: PieceIndex,
        kernel: CrackKernel,
        cracks_performed: u64,
    ) -> Option<Self> {
        if index.len() != data.len() {
            return None;
        }
        let col = CrackerColumn {
            data,
            rowids,
            index,
            cracks_performed,
            kernel,
            dispatches: KernelDispatches::default(),
        };
        col.validate().then_some(col)
    }

    /// Number of values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the column is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The (cracked) value array.
    #[must_use]
    pub fn data(&self) -> &[Value] {
        &self.data
    }

    /// The row ids aligned with [`CrackerColumn::data`], if kept.
    #[must_use]
    pub fn rowids(&self) -> Option<&[RowId]> {
        self.rowids.as_deref()
    }

    /// The cracker index.
    #[must_use]
    pub fn index(&self) -> &PieceIndex {
        &self.index
    }

    /// Number of pieces the column is currently partitioned into.
    #[must_use]
    pub fn piece_count(&self) -> usize {
        self.index.piece_count()
    }

    /// Average piece length.
    #[must_use]
    pub fn avg_piece_len(&self) -> f64 {
        self.index.avg_piece_len()
    }

    /// Total number of crack (partitioning) actions performed so far,
    /// counting both query-driven and auxiliary (idle-time) cracks.
    #[must_use]
    pub fn cracks_performed(&self) -> u64 {
        self.cracks_performed
    }

    /// All pieces.
    #[must_use]
    pub fn pieces(&self) -> &[Piece] {
        self.index.pieces()
    }

    /// Returns piece `idx`'s prefix-sum array, building (and installing) it
    /// if the piece does not carry a covering one yet.
    ///
    /// Building is one streaming pass over the piece — comparable to the
    /// partitioning pass an *unsorted* piece of the same size would pay for
    /// a single crack — after which every aggregate that lands anywhere in
    /// the piece or its descendants is a subtraction. Callers hold `&mut
    /// self`, so in the concurrent wrapper this only ever happens under the
    /// write latch (build once, read many). The piece's cached sum is
    /// derived from the array if it was unknown.
    fn ensure_piece_prefix(&mut self, idx: usize) -> Arc<PrefixSums> {
        if let Some(prefix) = self.index.piece(idx).covering_prefix() {
            return Arc::clone(prefix);
        }
        let p = self.index.piece(idx);
        let prefix = Arc::new(PrefixSums::build(p.start, &self.data[p.start..p.end]));
        let piece = &mut self.index.pieces_mut()[idx];
        piece.prefix = Some(Arc::clone(&prefix));
        if piece.sum.is_none() {
            piece.sum = Some(prefix.total());
        }
        prefix
    }

    /// Whether [`CrackerColumn::seed_prefix_sums`] would do any work: some
    /// sorted, non-empty piece lacks a covering prefix array. A cheap
    /// metadata walk, so the concurrent wrapper can probe under the shared
    /// latch before escalating to the write latch.
    #[must_use]
    pub fn needs_prefix_seeding(&self) -> bool {
        self.index
            .pieces()
            .iter()
            .any(|p| p.sorted && !p.is_empty() && p.covering_prefix().is_none())
    }

    /// Builds prefix-sum arrays for every sorted piece that lacks one,
    /// returning how many pieces were seeded.
    ///
    /// This is the idle-time / preparation entry point: `sort_fully` seeds
    /// its single piece eagerly, but a column handed over with pre-sorted
    /// pieces (or one whose prefixes were invalidated by updates) can be
    /// re-seeded here so resolved aggregates go back to zero-read.
    pub fn seed_prefix_sums(&mut self) -> usize {
        let mut seeded = 0;
        for idx in 0..self.index.piece_count() {
            let p = self.index.piece(idx);
            if p.sorted && !p.is_empty() && p.covering_prefix().is_none() {
                self.ensure_piece_prefix(idx);
                seeded += 1;
            }
        }
        seeded
    }

    /// Cracks the column so that values `>= v` start at the returned
    /// position, performing at most one partitioning pass over one piece.
    pub fn crack_at(&mut self, v: Value) -> usize {
        let Some(idx) = self.index.find_piece_for_value(v) else {
            return 0;
        };
        if let Some(pos) = self.index.resolved_boundary(v) {
            return pos;
        }
        let p = self.index.piece(idx);
        if p.sorted {
            // No data movement needed: binary search and record the
            // boundary. The piece's prefix-sum array (built lazily here,
            // under the same exclusive access the crack already holds)
            // prices both sides' sums at one subtraction each, so even
            // binary-search splits seed the aggregate cache.
            let prefix = self.ensure_piece_prefix(idx);
            let p = self.index.piece(idx);
            let off = self.data[p.start..p.end].partition_point(|&x| x < v);
            let pos = p.start + off;
            self.index.split_with_sums(
                idx,
                pos,
                v,
                prefix.sum_range(p.start..pos),
                prefix.sum_range(p.start..p.end),
            );
            return pos;
        }
        let choice = self.kernel.choose(p.len());
        self.dispatches.record(choice);
        // Sum-fused kernels: the pass that partitions the piece also
        // produces both sides' sums, which seed the aggregate cache for
        // free (the data is streaming through cache anyway).
        let pass = match (&mut self.rowids, choice) {
            (Some(rowids), KernelChoice::Branchy) => crate::kernels::crack_in_two_with_rowids_sums(
                &mut self.data[p.start..p.end],
                &mut rowids[p.start..p.end],
                v,
            ),
            (Some(rowids), KernelChoice::Predicated) => {
                crate::kernels::crack_in_two_with_rowids_sums_pred(
                    &mut self.data[p.start..p.end],
                    &mut rowids[p.start..p.end],
                    v,
                )
            }
            (None, KernelChoice::Branchy) => {
                crate::kernels::crack_in_two_sums(&mut self.data[p.start..p.end], v)
            }
            (None, KernelChoice::Predicated) => {
                crate::kernels::crack_in_two_sums_pred(&mut self.data[p.start..p.end], v)
            }
        };
        let pos = p.start + pass.split;
        self.index
            .split_with_sums(idx, pos, v, pass.lo_sum, pass.total_sum);
        self.cracks_performed += 1;
        pos
    }

    /// Answers the range select `[lo, hi)` adaptively: cracks the pieces the
    /// bounds fall into (at most two partitioning passes, or a single
    /// three-way pass when both bounds share a piece) and returns the
    /// contiguous position range holding the qualifying values.
    pub fn crack_select(&mut self, lo: Value, hi: Value) -> Range<usize> {
        if hi <= lo || self.data.is_empty() {
            return 0..0;
        }
        let lo_idx = self.index.find_piece_for_value(lo);
        let hi_idx = self.index.find_piece_for_value(hi);
        let lo_resolved = self.index.resolved_boundary(lo).is_some();
        let hi_resolved = self.index.resolved_boundary(hi).is_some();
        if let (Some(a), Some(b)) = (lo_idx, hi_idx) {
            if a == b && !lo_resolved && !hi_resolved && !self.index.piece(a).sorted {
                // Both bounds land in the same unsorted piece: one pass.
                let p = self.index.piece(a);
                let choice = self.kernel.choose(p.len());
                self.dispatches.record(choice);
                let pass = match (&mut self.rowids, choice) {
                    (Some(rowids), KernelChoice::Branchy) => {
                        crate::kernels::crack_in_three_with_rowids_sums(
                            &mut self.data[p.start..p.end],
                            &mut rowids[p.start..p.end],
                            lo,
                            hi,
                        )
                    }
                    (Some(rowids), KernelChoice::Predicated) => {
                        crate::kernels::crack_in_three_with_rowids_sums_pred(
                            &mut self.data[p.start..p.end],
                            &mut rowids[p.start..p.end],
                            lo,
                            hi,
                        )
                    }
                    (None, KernelChoice::Branchy) => {
                        crate::kernels::crack_in_three_sums(&mut self.data[p.start..p.end], lo, hi)
                    }
                    (None, KernelChoice::Predicated) => crate::kernels::crack_in_three_sums_pred(
                        &mut self.data[p.start..p.end],
                        lo,
                        hi,
                    ),
                };
                let abs_a = p.start + pass.a;
                let abs_b = p.start + pass.b;
                // Both splits (and all three region sums the fused pass
                // produced) are recorded with a single piece-table edit, so
                // no second O(log P) piece lookup and no second tail shift.
                self.index
                    .split_multi_with_sums(a, &[(abs_a, lo), (abs_b, hi)], Some(&pass.sums));
                self.cracks_performed += 1;
                return abs_a..abs_b;
            }
        }
        let start = self.crack_at(lo);
        let end = self.crack_at(hi);
        start..end
    }

    /// Answers a batch of range selects adaptively, amortizing the
    /// partitioning work across the whole batch: the deduplicated predicate
    /// bounds of all queries are grouped by the piece they currently fall
    /// into, and every affected piece is cracked around *all* of its pivots
    /// with a single multi-pivot pass ([`crate::kernels::crack_in_k`];
    /// one or two pivots use the cheaper one-pass two-/three-way kernels).
    /// Each query is then answered from the refined index, so the returned
    /// ranges are identical to what per-query [`CrackerColumn::crack_select`]
    /// calls would produce — but a cold column is swept twice per batch
    /// instead of up to twice per query.
    pub fn crack_select_batch(&mut self, bounds: &[(Value, Value)]) -> Vec<Range<usize>> {
        if self.data.is_empty() {
            return bounds.iter().map(|_| 0..0).collect();
        }
        let mut pivots = dedup_batch_pivots(bounds);
        pivots.retain(|&v| self.index.resolved_boundary(v).is_none());

        // Group the remaining pivots by target piece. Sorted pivots give
        // non-decreasing piece indexes, so groups are runs. The kernel
        // passes never touch the piece table, so all groups partition
        // against stable piece indexes; their splits are then recorded with
        // a single piece-table rebuild (one O(P + k) pass instead of one
        // O(P) tail shift per affected piece).
        let mut groups: Vec<(usize, Range<usize>)> = Vec::new();
        for (i, &v) in pivots.iter().enumerate() {
            // A pivot without a piece (empty index) simply isn't cracked;
            // the contiguity check keeps runs valid if one is skipped.
            let Some(idx) = self.index.find_piece_for_value(v) else {
                continue;
            };
            match groups.last_mut() {
                Some((last, r)) if *last == idx && r.end == i => r.end = i + 1,
                _ => groups.push((idx, i..i + 1)),
            }
        }
        let recorded: Vec<crate::index::SplitGroup> = groups
            .into_iter()
            .map(|(idx, range)| {
                let (splits, seg_sums) = self.crack_piece_multi(idx, &pivots[range]);
                (idx, splits, seg_sums)
            })
            .collect();
        self.index.split_grouped_with_sums(&recorded);

        // Every bound is now a resolved boundary; `crack_at` degenerates to
        // two binary searches per query (and stays correct if it does not).
        bounds
            .iter()
            .map(|&(lo, hi)| {
                if hi <= lo {
                    0..0
                } else {
                    let start = self.crack_at(lo);
                    let end = self.crack_at(hi);
                    start..end
                }
            })
            .collect()
    }

    /// Cracks piece `idx` around all `pivots` (strictly increasing, all
    /// falling into the piece) in one partitioning pass, returning the
    /// produced splits plus the pass's per-segment sums for the caller to
    /// record (the batch path batches them into one
    /// [`PieceIndex::split_grouped_with_sums`] rebuild). Sorted pieces are
    /// binary-searched — no data moves, and the segment sums come from the
    /// piece's (lazily built) prefix-sum array instead of a kernel pass.
    fn crack_piece_multi(
        &mut self,
        idx: usize,
        pivots: &[Value],
    ) -> (Vec<(usize, Value)>, Option<Vec<i128>>) {
        let p = self.index.piece(idx);
        if p.sorted {
            // No data movement needed: binary-search every boundary and
            // price every segment with a prefix difference.
            let prefix = self.ensure_piece_prefix(idx);
            let splits: Vec<(usize, Value)> = pivots
                .iter()
                .map(|&v| {
                    let off = self.data[p.start..p.end].partition_point(|&x| x < v);
                    (p.start + off, v)
                })
                .collect();
            let mut seg_sums = Vec::with_capacity(splits.len() + 1);
            let mut prev = p.start;
            for &(pos, _) in &splits {
                seg_sums.push(prefix.sum_range(prev..pos));
                prev = pos;
            }
            seg_sums.push(prefix.sum_range(prev..p.end));
            return (splits, Some(seg_sums));
        }
        let choice = self.kernel.choose(p.len());
        self.dispatches.record(choice);
        let forced = match choice {
            KernelChoice::Branchy => CrackKernel::Branchy,
            KernelChoice::Predicated => CrackKernel::Predicated,
        };
        let data = &mut self.data[p.start..p.end];
        let (offsets, seg_sums): (Vec<usize>, Vec<i128>) = match (&mut self.rowids, pivots) {
            // One or two pivots keep the classic single-pass kernels.
            (Some(rowids), &[v]) => {
                let two =
                    forced.crack_in_two_with_rowids_sums(data, &mut rowids[p.start..p.end], v);
                (vec![two.split], vec![two.lo_sum, two.hi_sum()])
            }
            (None, &[v]) => {
                let two = forced.crack_in_two_sums(data, v);
                (vec![two.split], vec![two.lo_sum, two.hi_sum()])
            }
            (Some(rowids), &[lo, hi]) => {
                let three = forced.crack_in_three_with_rowids_sums(
                    data,
                    &mut rowids[p.start..p.end],
                    lo,
                    hi,
                );
                (vec![three.a, three.b], three.sums.to_vec())
            }
            (None, &[lo, hi]) => {
                let three = forced.crack_in_three_sums(data, lo, hi);
                (vec![three.a, three.b], three.sums.to_vec())
            }
            (Some(rowids), _) => {
                let k =
                    forced.crack_in_k_with_rowids_sums(data, &mut rowids[p.start..p.end], pivots);
                (k.boundaries, k.segment_sums)
            }
            (None, _) => {
                let k = forced.crack_in_k_sums(data, pivots);
                (k.boundaries, k.segment_sums)
            }
        };
        self.cracks_performed += 1;
        let splits = offsets
            .into_iter()
            .map(|off| p.start + off)
            .zip(pivots.iter().copied())
            .collect();
        (splits, Some(seg_sums))
    }

    /// Like [`CrackerColumn::crack_select`] but only returns the number of
    /// qualifying values.
    pub fn crack_count(&mut self, lo: Value, hi: Value) -> u64 {
        let r = self.crack_select(lo, hi);
        (r.end - r.start) as u64
    }

    /// Returns the values in a position range previously produced by
    /// [`CrackerColumn::crack_select`].
    #[must_use]
    pub fn view(&self, range: Range<usize>) -> &[Value] {
        &self.data[range]
    }

    /// Returns the row ids in a position range, if row ids are kept.
    #[must_use]
    pub fn rowids_in(&self, range: Range<usize>) -> Option<&[RowId]> {
        self.rowids.as_ref().map(|r| &r[range])
    }

    /// Answers `[lo, hi)` *without* reorganizing anything, if the cracker
    /// index already resolves both bounds. Used by the concurrent wrapper's
    /// read-only fast path.
    #[must_use]
    pub fn select_if_resolved(&self, lo: Value, hi: Value) -> Option<Range<usize>> {
        if hi <= lo {
            return Some(0..0);
        }
        let start = self.index.resolved_boundary(lo)?;
        let end = self.index.resolved_boundary(hi)?;
        Some(start..end)
    }

    /// Answers `[lo, hi)` *without* reorganizing anything, if every bound is
    /// either already resolved by the cracker index **or** falls into a
    /// sorted piece carrying a prefix-sum array (where binary search finds
    /// the position and [`CrackerColumn::aggregate_range`] prices the
    /// boundary overlap with a prefix difference).
    ///
    /// This is the read-only superset of
    /// [`CrackerColumn::select_if_resolved`] used by the concurrent
    /// wrapper: on a sorted, prefix-seeded region, *arbitrary* range
    /// aggregates stay on the shared latch forever — no splits, no piece
    /// table growth, no data movement. A sorted piece *without* a prefix
    /// deliberately does not qualify: answering it here would mask-scan the
    /// interior on every repeat, while falling through to the crack path
    /// builds the prefix once and makes every later query a subtraction.
    #[must_use]
    pub fn select_if_answerable(&self, lo: Value, hi: Value) -> Option<Range<usize>> {
        if hi <= lo {
            return Some(0..0);
        }
        let start = self.bound_position_readonly(lo)?;
        let end = self.bound_position_readonly(hi)?;
        Some(start..end)
    }

    /// The position where values `>= v` begin, if it can be determined
    /// without reorganizing: a resolved crack boundary, or binary search
    /// inside a sorted piece whose prefix-sum array is present (so the
    /// caller's aggregate stays zero-read).
    fn bound_position_readonly(&self, v: Value) -> Option<usize> {
        if let Some(pos) = self.index.resolved_boundary(v) {
            return Some(pos);
        }
        let idx = self.index.find_piece_for_value(v)?;
        let p = &self.index.pieces()[idx];
        if p.sorted && p.covering_prefix().is_some() {
            let off = self.data[p.start..p.end].partition_point(|&x| x < v);
            return Some(p.start + off);
        }
        None
    }

    /// Composes the count and sum of a resolved position range from the
    /// per-piece aggregate cache.
    ///
    /// Crack boundaries always fall on piece boundaries, so a resolved
    /// result range is a run of whole pieces: the count is implicit in the
    /// range length, and the sum is composed from the pieces' cached sums.
    /// A piece that is only *partially* overlapped — the boundary pieces of
    /// a range produced by [`CrackerColumn::select_if_answerable`]'s binary
    /// searches into sorted pieces — contributes a prefix-sum difference
    /// when it carries a prefix array: still zero data-array reads. Only
    /// pieces with neither a usable cached sum nor a covering prefix are
    /// scanned, through the storage layer's chunked masked-sum kernel — the
    /// same kernel the pre-cache answer path used for the whole range. A
    /// fully cached/prefix-composed range therefore costs O(pieces)
    /// metadata reads and **zero** data-array touches.
    ///
    /// **Contract:** every value in `range` must satisfy `lo <= v < hi` —
    /// true for any range produced by resolving both bounds (the only
    /// production use). `lo`/`hi` then only parameterize the scan
    /// fallback's mask, keeping the fallback identical to the pre-cache
    /// answer path. For a range violating the contract the sum is
    /// unspecified: cached whole pieces and prefix differences contribute
    /// unmasked positional sums, while scanned pieces are masked — the
    /// arms would disagree. Debug builds assert the contract on every
    /// prefix-composed and scanned piece. The outcome reports how the sum
    /// was produced so callers can maintain cache hit/prefix/partial/miss
    /// statistics.
    #[must_use]
    pub fn aggregate_range(&self, range: Range<usize>, lo: Value, hi: Value) -> RangeAggregate {
        let mut agg = RangeAggregate {
            count: (range.end.saturating_sub(range.start)) as u64,
            ..RangeAggregate::default()
        };
        if range.start >= range.end {
            return agg;
        }
        let Some(mut idx) = self.index.find_piece_for_position(range.start) else {
            return agg;
        };
        let pieces = self.index.pieces();
        while idx < pieces.len() && pieces[idx].start < range.end {
            let p = &pieces[idx];
            let overlap = p.start.max(range.start)..p.end.min(range.end);
            match (p.sum, p.covering_prefix()) {
                // Whole piece covered and cached: pure metadata.
                (Some(sum), _) if overlap == (p.start..p.end) => {
                    agg.sum += sum;
                    agg.cached_pieces += 1;
                }
                // Partial overlap of (or missing sum on) a piece with a
                // prefix-sum array: one subtraction, still no data reads.
                (_, Some(prefix)) => {
                    debug_assert!(
                        self.data[overlap.clone()]
                            .iter()
                            .all(|&v| v >= lo && v < hi),
                        "aggregate_range contract: every value in the range must satisfy [lo, hi)"
                    );
                    agg.sum += prefix.sum_range(overlap);
                    agg.prefix_pieces += 1;
                }
                // No cache at all: scan the overlap.
                _ => {
                    debug_assert!(
                        self.data[overlap.clone()]
                            .iter()
                            .all(|&v| v >= lo && v < hi),
                        "aggregate_range contract: every value in the range must satisfy [lo, hi)"
                    );
                    agg.sum += holistic_storage::scan_sum(&self.data[overlap.clone()], lo, hi);
                    agg.scanned_pieces += 1;
                    agg.scanned_values += (overlap.end - overlap.start) as u64;
                }
            }
            idx += 1;
        }
        agg
    }

    /// Number of pieces currently carrying a trusted cached sum (aggregate
    /// cache population probe for tests and diagnostics).
    #[must_use]
    pub fn cached_sum_pieces(&self) -> usize {
        self.index
            .pieces()
            .iter()
            .filter(|p| p.sum.is_some())
            .count()
    }

    /// Number of pieces currently carrying a covering prefix-sum array
    /// (prefix-cache population probe for tests and diagnostics).
    #[must_use]
    pub fn prefix_pieces(&self) -> usize {
        self.index
            .pieces()
            .iter()
            .filter(|p| p.covering_prefix().is_some())
            .count()
    }

    /// Applies one *auxiliary refinement action*: picks a random position,
    /// uses its value as a pivot and cracks the piece it lives in.
    ///
    /// This is the unit of idle-time work in the paper ("apply X random
    /// index refinement actions"): cheap, always safe, and each action makes
    /// some future query on this column cheaper. Returns `true` if the
    /// action introduced a new piece (an action can be a no-op if the chosen
    /// pivot happens to already be a boundary or the piece is degenerate).
    pub fn random_crack<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        if self.data.is_empty() {
            return false;
        }
        let pos = rng.gen_range(0..self.data.len());
        let pivot = self.data[pos];
        let before = self.index.piece_count();
        self.crack_at(pivot);
        self.index.piece_count() > before
    }

    /// Applies one auxiliary refinement action restricted to the value range
    /// `[lo, hi)` — used for hot-range boosting during query processing.
    ///
    /// Returns `true` if a new piece was introduced.
    pub fn random_crack_in_range<R: Rng + ?Sized>(
        &mut self,
        lo: Value,
        hi: Value,
        rng: &mut R,
    ) -> bool {
        if self.data.is_empty() || hi <= lo {
            return false;
        }
        let pivot = rng.gen_range(lo..hi);
        let before = self.index.piece_count();
        self.crack_at(pivot);
        self.index.piece_count() > before
    }

    /// Applies `actions` auxiliary refinement actions and returns how many
    /// of them introduced a new piece.
    pub fn random_cracks<R: Rng + ?Sized>(&mut self, actions: u64, rng: &mut R) -> u64 {
        let mut effective = 0;
        for _ in 0..actions {
            if self.random_crack(rng) {
                effective += 1;
            }
        }
        effective
    }

    /// Fully sorts the column (and row ids), collapsing the piece index to a
    /// single sorted piece. This is what offline indexing does with enough
    /// idle time; exposed here so the kernels can share one representation.
    ///
    /// The sorted piece is seeded with both its total sum and its prefix-sum
    /// array, so *every* range aggregate on the freshly sorted column — not
    /// just the full range — is immediately zero-read: two binary searches
    /// and one subtraction.
    pub fn sort_fully(&mut self) {
        match &mut self.rowids {
            Some(rowids) => {
                let mut pairs: Vec<(Value, RowId)> = self
                    .data
                    .iter()
                    .copied()
                    .zip(rowids.iter().copied())
                    .collect();
                pairs.sort_unstable();
                for (i, (v, r)) in pairs.into_iter().enumerate() {
                    self.data[i] = v;
                    rowids[i] = r;
                }
            }
            None => self.data.sort_unstable(),
        }
        self.index = PieceIndex::new_sorted(self.data.len());
        let prefix = PrefixSums::build(0, &self.data);
        if let Some(p) = self.index.pieces_mut().last_mut() {
            p.sum = Some(prefix.total());
            p.prefix = Some(Arc::new(prefix));
        }
    }

    /// Whether the column is already in the state [`CrackerColumn::sort_fully`]
    /// produces: a single sorted piece with a covering prefix-sum array (or
    /// an empty column, which has nothing to sort). Lets callers skip the
    /// sort — and, in the concurrent wrapper, the write latch — entirely.
    #[must_use]
    pub fn is_fully_sorted(&self) -> bool {
        self.data.is_empty()
            || (self.index.piece_count() == 1
                && self.index.piece(0).sorted
                && self.index.piece(0).covering_prefix().is_some())
    }

    /// Validates the cracker-column invariants (piece index consistent with
    /// the data, row ids aligned). Intended for tests and debug assertions.
    #[must_use]
    pub fn validate(&self) -> bool {
        if let Some(rowids) = &self.rowids {
            if rowids.len() != self.data.len() {
                return false;
            }
        }
        self.index.validate(&self.data)
    }

    /// Validates the pieces whose indexes fall in `range` (clamped to the
    /// piece table) against the data, including row-id alignment. This is
    /// the incremental unit of the background scrubber: full
    /// [`CrackerColumn::validate`] is O(column), while one scrub step is
    /// O(the pieces it covers).
    #[must_use]
    pub fn validate_piece_range(&self, range: Range<usize>) -> bool {
        if let Some(rowids) = &self.rowids {
            if rowids.len() != self.data.len() {
                return false;
            }
        }
        let end = range.end.min(self.index.piece_count());
        self.index.pieces()[range.start.min(end)..end]
            .iter()
            .all(|p| p.validate(&self.data))
    }

    /// Reassembles a cracker column from recovered parts with **sampled**
    /// validation: structural invariants (extent match, row-id alignment,
    /// piece-table contiguity — already enforced by `PieceIndex`) are
    /// always checked, but the per-piece content pass of
    /// [`CrackerColumn::validate`] runs only on a deterministic sample of
    /// roughly one in `sample_rate` pieces (always including the first
    /// and last). The caller must arrange for the skipped pieces to be
    /// validated later — the background scrubber / first-touch paranoia
    /// path — which is safe only in an engine where a deferred validation
    /// failure heals (quarantine + rebuild) instead of crashing.
    #[must_use]
    pub fn from_parts_sampled(
        data: Vec<Value>,
        rowids: Option<Vec<RowId>>,
        index: PieceIndex,
        kernel: CrackKernel,
        cracks_performed: u64,
        sample_seed: u64,
        sample_rate: usize,
    ) -> Option<Self> {
        if index.len() != data.len() {
            return None;
        }
        if let Some(rowids) = &rowids {
            if rowids.len() != data.len() {
                return None;
            }
        }
        let rate = sample_rate.max(1) as u64;
        let n = index.piece_count();
        let sampled = |i: usize| {
            i == 0
                || i + 1 == n
                || (i as u64)
                    .wrapping_add(sample_seed)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .is_multiple_of(rate)
        };
        for (i, piece) in index.pieces().iter().enumerate() {
            if sampled(i) && !piece.validate(&data) {
                return None;
            }
        }
        Some(CrackerColumn {
            data,
            rowids,
            index,
            cracks_performed,
            kernel,
            dispatches: KernelDispatches::default(),
        })
    }

    /// (Internal) mutable access for the updates module.
    pub(crate) fn parts_mut(
        &mut self,
    ) -> (&mut Vec<Value>, Option<&mut Vec<RowId>>, &mut PieceIndex) {
        (&mut self.data, self.rowids.as_mut(), &mut self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Vec<Value> {
        vec![13, 16, 4, 9, 2, 12, 7, 1, 19, 3, 14, 11, 8, 6]
    }

    fn scan_count(values: &[Value], lo: Value, hi: Value) -> u64 {
        values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
    }

    #[test]
    fn first_select_returns_correct_range() {
        let mut c = CrackerColumn::from_values(sample());
        let r = c.crack_select(5, 12);
        let count = (r.end - r.start) as u64;
        assert_eq!(count, scan_count(&sample(), 5, 12));
        assert!(c.view(r).iter().all(|&v| (5..12).contains(&v)));
        assert!(c.validate());
        assert!(c.piece_count() >= 2);
        assert!(c.cracks_performed() >= 1);
    }

    #[test]
    fn repeated_selects_stay_correct_and_refine() {
        let mut c = CrackerColumn::from_values(sample());
        let queries = [(5, 12), (1, 4), (10, 20), (0, 25), (7, 8), (13, 14)];
        for &(lo, hi) in &queries {
            let r = c.crack_select(lo, hi);
            assert_eq!((r.end - r.start) as u64, scan_count(&sample(), lo, hi));
            assert!(c.validate(), "invariants violated after query [{lo},{hi})");
        }
        assert!(c.piece_count() > 2);
    }

    #[test]
    fn crack_count_matches_scan() {
        let mut c = CrackerColumn::from_values(sample());
        assert_eq!(c.crack_count(3, 10), scan_count(&sample(), 3, 10));
        assert_eq!(c.crack_count(100, 200), 0);
        assert_eq!(c.crack_count(9, 2), 0);
    }

    #[test]
    fn empty_column_is_handled() {
        let mut c = CrackerColumn::from_values(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.crack_select(1, 10), 0..0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!c.random_crack(&mut rng));
        assert!(c.validate());
    }

    #[test]
    fn rowids_follow_their_values() {
        let values = sample();
        let mut c = CrackerColumn::from_values_with_rowids(values.clone());
        let r = c.crack_select(5, 12);
        let ids = c.rowids_in(r.clone()).expect("rowids kept");
        for (&v, &id) in c.view(r).iter().zip(ids) {
            assert_eq!(values[id as usize], v, "rowid must still address its value");
        }
        assert!(c.validate());
    }

    #[test]
    fn from_column_copies_base_data() {
        let base = Column::from_values("a", sample());
        let mut c = CrackerColumn::from_column(&base, true);
        assert_eq!(c.len(), base.len());
        let r = c.crack_select(2, 9);
        assert_eq!((r.end - r.start) as u64, base.scan_count(2, 9));
        // Base column untouched.
        assert_eq!(base.values(), &sample()[..]);
    }

    #[test]
    fn select_if_resolved_only_after_cracking() {
        let mut c = CrackerColumn::from_values(sample());
        assert!(c.select_if_resolved(5, 12).is_none());
        let r = c.crack_select(5, 12);
        assert_eq!(c.select_if_resolved(5, 12), Some(r));
        assert!(c.select_if_resolved(5, 13).is_none());
        assert_eq!(c.select_if_resolved(12, 5), Some(0..0));
    }

    #[test]
    fn random_cracks_increase_pieces() {
        let mut c = CrackerColumn::from_values((0..1000).rev().collect());
        let mut rng = StdRng::seed_from_u64(42);
        let effective = c.random_cracks(50, &mut rng);
        assert!(
            effective > 10,
            "expected most random actions to split, got {effective}"
        );
        assert!(c.piece_count() > 10);
        assert!(c.validate());
        // Queries remain correct after arbitrary refinement.
        let r = c.crack_select(100, 200);
        assert_eq!((r.end - r.start), 100);
    }

    #[test]
    fn random_crack_in_range_only_touches_that_range() {
        let mut c = CrackerColumn::from_values((0..1000).collect());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            c.random_crack_in_range(400, 500, &mut rng);
        }
        assert!(c.validate());
        // All introduced boundaries fall inside [400, 500].
        for p in c.pieces() {
            if let Some(lo) = p.lo {
                assert!((400..=500).contains(&lo) || lo == 0);
            }
        }
        assert!(!c.random_crack_in_range(10, 10, &mut rng));
    }

    #[test]
    fn sort_fully_yields_single_sorted_piece_and_fast_selects() {
        let mut c = CrackerColumn::from_values_with_rowids(sample());
        c.sort_fully();
        assert_eq!(c.piece_count(), 1);
        assert!(c.pieces()[0].sorted);
        assert!(c.data().windows(2).all(|w| w[0] <= w[1]));
        assert!(c.validate());
        let cracks_before = c.cracks_performed();
        let r = c.crack_select(5, 12);
        assert_eq!((r.end - r.start) as u64, scan_count(&sample(), 5, 12));
        // Selecting on a sorted column must not move data.
        assert_eq!(c.cracks_performed(), cracks_before);
        // Row ids still address their values after the sort.
        let ids = c.rowids_in(r.clone()).unwrap();
        for (&v, &id) in c.view(r).iter().zip(ids) {
            assert_eq!(sample()[id as usize], v);
        }
    }

    #[test]
    fn duplicate_heavy_data_stays_correct() {
        let values: Vec<Value> = std::iter::repeat_n([5, 5, 7, 7, 7, 9], 20)
            .flatten()
            .collect();
        let mut c = CrackerColumn::from_values(values.clone());
        for &(lo, hi) in &[(5, 6), (7, 8), (5, 8), (6, 7), (9, 10), (0, 100)] {
            let r = c.crack_select(lo, hi);
            assert_eq!((r.end - r.start) as u64, scan_count(&values, lo, hi));
            assert!(c.validate());
        }
    }

    #[test]
    fn kernel_policy_is_respected_and_dispatches_are_counted() {
        use crate::kernels::CrackKernel;
        for kernel in [CrackKernel::Branchy, CrackKernel::Predicated] {
            let mut c = CrackerColumn::from_values(sample()).with_kernel(kernel);
            assert_eq!(c.kernel(), kernel);
            assert_eq!(c.kernel_dispatches().total(), 0);
            let r = c.crack_select(5, 12);
            assert_eq!((r.end - r.start) as u64, scan_count(&sample(), 5, 12));
            assert!(c.validate());
            let d = c.kernel_dispatches();
            assert!(d.total() >= 1);
            match kernel {
                CrackKernel::Branchy => assert_eq!(d.predicated, 0),
                CrackKernel::Predicated => assert_eq!(d.branchy, 0),
                CrackKernel::Auto { .. } => unreachable!(),
            }
        }
        // Auto on a tiny column always resolves to the branchy form.
        let mut c = CrackerColumn::from_values(sample());
        c.set_kernel(CrackKernel::auto());
        let _ = c.crack_select(5, 12);
        assert_eq!(c.kernel_dispatches().predicated, 0);
        assert!(c.kernel_dispatches().branchy >= 1);
    }

    #[test]
    fn predicated_kernel_answers_match_branchy_across_a_query_sequence() {
        let queries = [(5, 12), (1, 4), (10, 20), (0, 25), (7, 8), (13, 14)];
        let mut branchy =
            CrackerColumn::from_values(sample()).with_kernel(crate::kernels::CrackKernel::Branchy);
        let mut pred = CrackerColumn::from_values(sample())
            .with_kernel(crate::kernels::CrackKernel::Predicated);
        for &(lo, hi) in &queries {
            let rb = branchy.crack_select(lo, hi);
            let rp = pred.crack_select(lo, hi);
            assert_eq!(rb.end - rb.start, rp.end - rp.start, "[{lo},{hi})");
            assert!(branchy.validate() && pred.validate());
        }
    }

    #[test]
    fn batch_select_matches_sequential_answers_and_boundaries() {
        let values: Vec<Value> = (0..2000).map(|i| (i * 7919) % 2000).collect();
        let batch: Vec<(Value, Value)> = vec![
            (100, 200),
            (150, 250), // overlaps the first
            (1900, 2100),
            (500, 400), // inverted: empty
            (700, 700), // degenerate: empty
            (100, 200), // exact duplicate
            (0, 2000),
        ];
        let mut batched = CrackerColumn::from_values(values.clone());
        let mut sequential = CrackerColumn::from_values(values.clone());
        let got = batched.crack_select_batch(&batch);
        for (r, &(lo, hi)) in got.iter().zip(&batch) {
            let want = sequential.crack_select(lo, hi);
            assert_eq!(
                (r.end - r.start) as u64,
                (want.end - want.start) as u64,
                "count mismatch for [{lo},{hi})"
            );
            assert_eq!(
                (r.end - r.start) as u64,
                scan_count(&values, lo, hi),
                "scan mismatch for [{lo},{hi})"
            );
            assert!(batched.view(r.clone()).iter().all(|&v| v >= lo && v < hi));
        }
        // Plain cracking is order-independent: the batch pass must leave the
        // exact same piece boundaries as the sequential replay.
        assert_eq!(batched.index(), sequential.index());
        assert!(batched.validate());
        assert!(sequential.validate());
    }

    #[test]
    fn batch_select_cracks_each_piece_once() {
        // 8 distinct queries on a fresh column: 16 pivots, all landing in
        // the single initial piece. The batch path must partition it with
        // one kernel dispatch (one pass), not 16.
        let values: Vec<Value> = (0..4096).rev().collect();
        let mut c = CrackerColumn::from_values(values.clone());
        let batch: Vec<(Value, Value)> = (0..8).map(|i| (i * 500, i * 500 + 40)).collect();
        let got = c.crack_select_batch(&batch);
        assert_eq!(c.kernel_dispatches().total(), 1, "one pass for the batch");
        assert_eq!(c.cracks_performed(), 1);
        for (r, &(lo, hi)) in got.iter().zip(&batch) {
            assert_eq!((r.end - r.start) as u64, scan_count(&values, lo, hi));
        }
        assert!(c.piece_count() >= 16, "all pivots became boundaries");
        assert!(c.validate());

        // A second identical batch is fully resolved: no more dispatches.
        let again = c.crack_select_batch(&batch);
        assert_eq!(c.kernel_dispatches().total(), 1);
        assert_eq!(again, got);
    }

    #[test]
    fn batch_select_with_rowids_keeps_alignment() {
        let values = sample();
        let mut c = CrackerColumn::from_values_with_rowids(values.clone());
        let batch = vec![(3, 8), (10, 15), (1, 20)];
        let got = c.crack_select_batch(&batch);
        for r in got {
            let ids = c.rowids_in(r.clone()).expect("rowids kept");
            for (&v, &id) in c.view(r.clone()).iter().zip(ids) {
                assert_eq!(values[id as usize], v);
            }
        }
        assert!(c.validate());
    }

    #[test]
    fn batch_select_on_sorted_column_moves_no_data() {
        let mut c = CrackerColumn::from_values(sample());
        c.sort_fully();
        let before = c.cracks_performed();
        let got = c.crack_select_batch(&[(5, 12), (1, 4), (13, 20)]);
        assert_eq!(c.cracks_performed(), before, "sorted pieces binary-search");
        for (r, &(lo, hi)) in got.iter().zip(&[(5, 12), (1, 4), (13, 20)]) {
            assert_eq!((r.end - r.start) as u64, scan_count(&sample(), lo, hi));
        }
        assert!(c.validate());
    }

    #[test]
    fn batch_select_empty_column_and_empty_batch() {
        let mut empty = CrackerColumn::from_values(vec![]);
        assert_eq!(empty.crack_select_batch(&[(1, 5)]), vec![0..0]);
        let mut c = CrackerColumn::from_values(sample());
        assert!(c.crack_select_batch(&[]).is_empty());
        assert_eq!(c.kernel_dispatches().total(), 0);
    }

    #[test]
    fn batch_select_duplicate_heavy_data() {
        let values: Vec<Value> = std::iter::repeat_n([5, 5, 7, 7, 7, 9], 40)
            .flatten()
            .collect();
        let mut c = CrackerColumn::from_values(values.clone());
        let batch = vec![(5, 6), (7, 8), (5, 8), (6, 7), (9, 10), (0, 100)];
        let got = c.crack_select_batch(&batch);
        for (r, &(lo, hi)) in got.iter().zip(&batch) {
            assert_eq!((r.end - r.start) as u64, scan_count(&values, lo, hi));
        }
        assert!(c.validate());
    }

    fn scan_sum_ref(values: &[Value], lo: Value, hi: Value) -> i128 {
        values
            .iter()
            .filter(|&&v| v >= lo && v < hi)
            .map(|&v| i128::from(v))
            .sum()
    }

    #[test]
    fn cracking_populates_the_aggregate_cache() {
        let mut c = CrackerColumn::from_values(sample());
        assert_eq!(c.cached_sum_pieces(), 0);
        let r = c.crack_select(5, 12);
        // One fused pass taught every resulting piece its sum.
        assert_eq!(c.cached_sum_pieces(), c.piece_count());
        assert!(c.validate());
        let agg = c.aggregate_range(r.clone(), 5, 12);
        assert_eq!(agg.count, (r.end - r.start) as u64);
        assert_eq!(agg.sum, scan_sum_ref(&sample(), 5, 12));
        assert_eq!(
            agg.scanned_values, 0,
            "resolved aggregate must not read data"
        );
        assert_eq!(agg.scanned_pieces, 0);
        assert!(agg.cached_pieces >= 1);
    }

    #[test]
    fn batch_cracking_populates_the_aggregate_cache() {
        let values: Vec<Value> = (0..2000).map(|i| (i * 7919) % 2000).collect();
        let mut c = CrackerColumn::from_values(values.clone());
        let batch: Vec<(Value, Value)> = (0..8).map(|i| (i * 200, i * 200 + 50)).collect();
        let ranges = c.crack_select_batch(&batch);
        assert_eq!(c.cached_sum_pieces(), c.piece_count());
        for (r, &(lo, hi)) in ranges.iter().zip(&batch) {
            let agg = c.aggregate_range(r.clone(), lo, hi);
            assert_eq!(agg.sum, scan_sum_ref(&values, lo, hi), "[{lo},{hi})");
            assert_eq!(agg.scanned_values, 0, "[{lo},{hi})");
        }
        assert!(c.validate());
    }

    #[test]
    fn sorted_piece_splits_seed_sums_from_the_prefix() {
        // Binary-search splits of a sorted column used to leave sum-less
        // children (masked-scan fallback, reported partial/miss). With the
        // per-piece prefix sums they are as cache-complete as kernel splits.
        let mut c = CrackerColumn::from_values(sample());
        c.sort_fully();
        assert_eq!(c.prefix_pieces(), 1, "sort_fully seeds the prefix");
        // The full sorted piece carries the column total.
        let full = c.aggregate_range(0..c.len(), i64::MIN, i64::MAX);
        assert_eq!(full.sum, scan_sum_ref(&sample(), i64::MIN, i64::MAX));
        assert_eq!(full.scanned_values, 0);
        // Splitting by binary search now derives both children's sums from
        // the shared prefix array: the resolved aggregate reads no data.
        let r = c.crack_select(5, 12);
        let agg = c.aggregate_range(r.clone(), 5, 12);
        assert_eq!(agg.sum, scan_sum_ref(&sample(), 5, 12));
        assert_eq!(agg.scanned_pieces, 0);
        assert_eq!(agg.scanned_values, 0);
        assert_eq!(c.cached_sum_pieces(), c.piece_count());
        assert_eq!(c.prefix_pieces(), c.piece_count(), "children share it");
        assert!(c.validate());
    }

    #[test]
    fn sorted_aggregates_are_answerable_without_cracking() {
        // Arbitrary interior bounds on a sorted, prefix-seeded column are
        // read-only: two binary searches resolve the range, and the
        // boundary pieces contribute prefix differences — no splits, no
        // data reads.
        let mut c = CrackerColumn::from_values(sample());
        assert!(c.select_if_answerable(5, 12).is_none(), "unsorted: crack");
        c.sort_fully();
        let pieces_before = c.piece_count();
        let r = c.select_if_answerable(5, 12).expect("sorted + prefix");
        assert_eq!((r.end - r.start) as u64, scan_count(&sample(), 5, 12));
        let agg = c.aggregate_range(r.clone(), 5, 12);
        assert_eq!(agg.sum, scan_sum_ref(&sample(), 5, 12));
        assert_eq!(agg.scanned_values, 0, "prefix difference, not a scan");
        assert!(agg.prefix_pieces >= 1);
        assert_eq!(c.piece_count(), pieces_before, "no reorganization");
        // Degenerate ranges short-circuit like select_if_resolved.
        assert_eq!(c.select_if_answerable(12, 5), Some(0..0));
        assert!(c.validate());
    }

    #[test]
    fn aggregate_range_scans_only_uncached_pieces() {
        // Strip the caches a crack pass seeded: the fallback path must
        // scan exactly the stripped pieces and still answer exactly.
        let mut c = CrackerColumn::from_values(sample());
        let r = c.crack_select(5, 12);
        let (_, _, index) = c.parts_mut();
        for p in index.pieces_mut() {
            p.sum = None;
            p.prefix = None;
        }
        let agg = c.aggregate_range(r.clone(), 5, 12);
        assert_eq!(agg.sum, scan_sum_ref(&sample(), 5, 12));
        assert_eq!(agg.cached_pieces, 0);
        assert_eq!(agg.prefix_pieces, 0);
        assert!(agg.scanned_pieces >= 1);
        assert_eq!(agg.scanned_values, (r.end - r.start) as u64);
        assert!(c.validate());
    }

    #[test]
    fn aggregate_range_handles_unaligned_ranges_with_the_mask() {
        // Not crack-resolved: an arbitrary position range cutting through
        // pieces, with the full-domain bounds so every value qualifies
        // (the documented contract). Partially overlapped pieces go
        // through the masked scan fallback and still sum exactly.
        let values: Vec<Value> = (0..100).rev().collect();
        let mut c = CrackerColumn::from_values(values);
        let _ = c.crack_select(20, 70);
        let agg = c.aggregate_range(3..47, i64::MIN, i64::MAX);
        let expected: i128 = c.data()[3..47].iter().map(|&v| i128::from(v)).sum();
        assert_eq!(agg.sum, expected);
        assert_eq!(agg.count, 44);
        // Empty range is pure metadata.
        let empty = c.aggregate_range(5..5, 0, 10);
        assert_eq!(empty, RangeAggregate::default());
    }

    #[test]
    fn boundary_value_queries() {
        let values: Vec<Value> = (0..100).collect();
        let mut c = CrackerColumn::from_values(values.clone());
        // Bounds equal to min / max / beyond.
        assert_eq!(c.crack_count(0, 100), 100);
        assert_eq!(c.crack_count(-50, 0), 0);
        assert_eq!(c.crack_count(99, 99), 0);
        assert_eq!(c.crack_count(99, 1000), 1);
        assert!(c.validate());
    }
}
