//! Stochastic cracking: robustness against adversarial query sequences.
//!
//! Plain cracking only splits at query bounds. A sequential workload (e.g.
//! a sliding window moving left to right) then always leaves one huge
//! unindexed piece that every query has to re-partition, so per-query cost
//! stays O(n) for a long time. Stochastic cracking (Halim, Idreos, Karras,
//! Yap — PVLDB 2012) injects additional *data-driven or random* splits so
//! progress is made on every query regardless of where its bounds fall.
//!
//! Implemented variants:
//!
//! * [`CrackPolicy::Standard`] — plain cracking, no auxiliary splits.
//! * [`CrackPolicy::Ddc`] — *Divide & Conquer (center)*: before resolving a
//!   query bound inside a large piece, recursively crack the piece at the
//!   value of its middle element until pieces drop below a threshold.
//! * [`CrackPolicy::Ddr`] — *Divide & Conquer (random)*: as DDC but the
//!   recursive pivots are values at random positions.
//! * [`CrackPolicy::Mdd1r`] — *Materialize, Data-Driven, 1 Random*: resolve
//!   the query bounds exactly, then add one random split inside each piece
//!   the query touched.

use rand::Rng;

use crate::cracker::CrackerColumn;
use crate::Value;

/// Default piece-size threshold (in values) below which the divide-and-
/// conquer policies stop introducing auxiliary splits.
pub const DEFAULT_DC_THRESHOLD: usize = 4096;

/// The cracking policy applied by a select operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrackPolicy {
    /// Plain database cracking (split only at query bounds).
    #[default]
    Standard,
    /// Divide & conquer with center pivots until pieces fall below the
    /// threshold.
    Ddc {
        /// Stop splitting once pieces are at most this many values.
        threshold: usize,
    },
    /// Divide & conquer with random pivots until pieces fall below the
    /// threshold.
    Ddr {
        /// Stop splitting once pieces are at most this many values.
        threshold: usize,
    },
    /// One extra random split per piece touched by the query.
    Mdd1r,
}

impl CrackPolicy {
    /// DDC with the default threshold.
    #[must_use]
    pub fn ddc() -> Self {
        CrackPolicy::Ddc {
            threshold: DEFAULT_DC_THRESHOLD,
        }
    }

    /// DDR with the default threshold.
    #[must_use]
    pub fn ddr() -> Self {
        CrackPolicy::Ddr {
            threshold: DEFAULT_DC_THRESHOLD,
        }
    }

    /// A short, stable name for reports and benchmark output.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CrackPolicy::Standard => "standard",
            CrackPolicy::Ddc { .. } => "ddc",
            CrackPolicy::Ddr { .. } => "ddr",
            CrackPolicy::Mdd1r => "mdd1r",
        }
    }
}

/// Answers the range select `[lo, hi)` on `column` using the given cracking
/// policy. Returns the contiguous position range of qualifying values, just
/// like [`CrackerColumn::crack_select`].
pub fn crack_select_with_policy<R: Rng + ?Sized>(
    column: &mut CrackerColumn,
    lo: Value,
    hi: Value,
    policy: CrackPolicy,
    rng: &mut R,
) -> std::ops::Range<usize> {
    if hi <= lo || column.is_empty() {
        return 0..0;
    }
    match policy {
        CrackPolicy::Standard => column.crack_select(lo, hi),
        CrackPolicy::Ddc { threshold } => {
            pre_split(column, lo, threshold.max(1), rng, false);
            pre_split(column, hi, threshold.max(1), rng, false);
            column.crack_select(lo, hi)
        }
        CrackPolicy::Ddr { threshold } => {
            pre_split(column, lo, threshold.max(1), rng, true);
            pre_split(column, hi, threshold.max(1), rng, true);
            column.crack_select(lo, hi)
        }
        CrackPolicy::Mdd1r => {
            let touched_lo = piece_extent_for_value(column, lo);
            let touched_hi = piece_extent_for_value(column, hi);
            let range = column.crack_select(lo, hi);
            // One random split inside each originally touched piece.
            for extent in [touched_lo, touched_hi].into_iter().flatten() {
                let (plo, phi) = extent;
                if phi > plo {
                    column.random_crack_in_range(plo, phi, rng);
                }
            }
            range
        }
    }
}

/// Answers a batch of range selects under the given cracking policy — the
/// batched counterpart of [`crack_select_with_policy`], built on
/// [`CrackerColumn::crack_select_batch`]'s multi-pivot pass.
///
/// Policy semantics mirror the sequential path: DDC/DDR run their
/// divide-and-conquer pre-splits around every deduplicated bound before the
/// exact batch pass, and MDD1R adds one random split inside each piece the
/// batch's bounds originally touched, after the exact pass. Answers are
/// always exactly the qualifying ranges, whatever the policy.
pub fn crack_select_batch_with_policy<R: Rng + ?Sized>(
    column: &mut CrackerColumn,
    bounds: &[(Value, Value)],
    policy: CrackPolicy,
    rng: &mut R,
) -> Vec<std::ops::Range<usize>> {
    if column.is_empty() {
        return bounds.iter().map(|_| 0..0).collect();
    }
    match policy {
        CrackPolicy::Standard => column.crack_select_batch(bounds),
        CrackPolicy::Ddc { threshold } | CrackPolicy::Ddr { threshold } => {
            let random_pivot = matches!(policy, CrackPolicy::Ddr { .. });
            for v in crate::cracker::dedup_batch_pivots(bounds) {
                pre_split(column, v, threshold.max(1), rng, random_pivot);
            }
            column.crack_select_batch(bounds)
        }
        CrackPolicy::Mdd1r => {
            let mut extents: Vec<(Value, Value)> = crate::cracker::dedup_batch_pivots(bounds)
                .into_iter()
                .filter_map(|v| piece_extent_for_value(column, v))
                .collect();
            extents.sort_unstable();
            extents.dedup();
            let ranges = column.crack_select_batch(bounds);
            for (plo, phi) in extents {
                if phi > plo {
                    column.random_crack_in_range(plo, phi, rng);
                }
            }
            ranges
        }
    }
}

/// Value extent (lo, hi) of the piece that currently holds `v`, if that
/// extent is known on both sides. Used by MDD1R to restrict its auxiliary
/// random split to the region the query actually touched.
fn piece_extent_for_value(column: &CrackerColumn, v: Value) -> Option<(Value, Value)> {
    let idx = column.index().find_piece_for_value(v)?;
    let p = column.index().piece(idx);
    let data = column.data();
    if p.is_empty() {
        return None;
    }
    let slice = &data[p.start..p.end];
    let lo = match p.lo {
        Some(lo) => lo,
        None => slice.iter().copied().min()?,
    };
    let hi = match p.hi {
        Some(hi) => hi,
        None => slice.iter().copied().max()? + 1,
    };
    (hi > lo).then_some((lo, hi))
}

/// Recursively splits the piece containing `v` until it is smaller than
/// `threshold`, using center (DDC) or random (DDR) pivots.
fn pre_split<R: Rng + ?Sized>(
    column: &mut CrackerColumn,
    v: Value,
    threshold: usize,
    rng: &mut R,
    random_pivot: bool,
) {
    // Bounded number of rounds to guarantee termination even on pathological
    // (e.g. all-equal) data where splits cannot shrink the piece.
    for _ in 0..64 {
        let Some(idx) = column.index().find_piece_for_value(v) else {
            return;
        };
        let p = column.index().piece(idx);
        if p.len() <= threshold || p.sorted {
            return;
        }
        let pos = if random_pivot {
            rng.gen_range(p.start..p.end)
        } else {
            p.start + p.len() / 2
        };
        let pivot = column.data()[pos];
        let before = column.piece_count();
        column.crack_at(pivot);
        if column.piece_count() == before {
            // No progress possible (duplicate-heavy piece); stop.
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> Vec<Value> {
        // Deterministic pseudo-random permutation of 0..4096.
        let mut v: Vec<Value> = (0..4096).collect();
        let mut state = 12345u64;
        for i in (1..v.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    fn scan_count(values: &[Value], lo: Value, hi: Value) -> u64 {
        values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
    }

    fn all_policies() -> Vec<CrackPolicy> {
        vec![
            CrackPolicy::Standard,
            CrackPolicy::Ddc { threshold: 256 },
            CrackPolicy::Ddr { threshold: 256 },
            CrackPolicy::Mdd1r,
        ]
    }

    #[test]
    fn every_policy_returns_scan_equivalent_results() {
        let base = data();
        for policy in all_policies() {
            let mut c = CrackerColumn::from_values(base.clone());
            let mut rng = StdRng::seed_from_u64(9);
            for &(lo, hi) in &[
                (100, 141),
                (2000, 2041),
                (0, 4096),
                (4000, 4001),
                (500, 300),
            ] {
                let r = crack_select_with_policy(&mut c, lo, hi, policy, &mut rng);
                assert_eq!(
                    (r.end - r.start) as u64,
                    scan_count(&base, lo, hi),
                    "policy {policy:?} wrong for [{lo},{hi})"
                );
                assert!(c.view(r).iter().all(|&v| v >= lo && v < hi));
                assert!(c.validate(), "policy {policy:?} broke invariants");
            }
        }
    }

    #[test]
    fn dc_policies_split_large_pieces_proactively() {
        let base = data();
        let mut plain = CrackerColumn::from_values(base.clone());
        let mut ddc = CrackerColumn::from_values(base.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let _ = crack_select_with_policy(&mut plain, 10, 20, CrackPolicy::Standard, &mut rng);
        let _ = crack_select_with_policy(
            &mut ddc,
            10,
            20,
            CrackPolicy::Ddc { threshold: 256 },
            &mut rng,
        );
        assert!(
            ddc.piece_count() > plain.piece_count(),
            "DDC should leave more pieces ({} vs {})",
            ddc.piece_count(),
            plain.piece_count()
        );
        // DDC drives the pieces *around the query bounds* below the
        // threshold (the complementary halves it peels off stay large —
        // that is by design; they get refined when later queries land there).
        for probe in [10, 15, 20] {
            let idx = ddc.index().find_piece_for_value(probe).unwrap();
            assert!(
                ddc.index().piece(idx).len() <= 256,
                "piece around {probe} still has {} values",
                ddc.index().piece(idx).len()
            );
        }
    }

    #[test]
    fn mdd1r_adds_at_most_a_few_extra_pieces_per_query() {
        let base = data();
        let mut c = CrackerColumn::from_values(base);
        let mut rng = StdRng::seed_from_u64(11);
        let _ = crack_select_with_policy(&mut c, 1000, 1041, CrackPolicy::Mdd1r, &mut rng);
        // Exact cracking of one fresh piece yields <= 3 pieces; MDD1R adds at
        // most 2 more (one per touched piece).
        assert!(c.piece_count() <= 5, "got {} pieces", c.piece_count());
        assert!(c.piece_count() >= 3);
    }

    #[test]
    fn sequential_workload_progress_under_ddr() {
        // Sliding window left-to-right: the classic worst case for plain cracking.
        let base = data();
        let mut plain = CrackerColumn::from_values(base.clone());
        let mut ddr = CrackerColumn::from_values(base.clone());
        let mut rng = StdRng::seed_from_u64(5);
        for q in 0..32 {
            let lo = q * 64;
            let hi = lo + 64;
            let _ = crack_select_with_policy(&mut plain, lo, hi, CrackPolicy::Standard, &mut rng);
            let _ = crack_select_with_policy(
                &mut ddr,
                lo,
                hi,
                CrackPolicy::Ddr { threshold: 128 },
                &mut rng,
            );
        }
        // Under the sequential workload plain cracking still has a huge
        // unindexed tail piece and exactly one boundary per query bound; DDR
        // keeps splitting ahead of the query sequence.
        assert!(
            ddr.piece_count() > plain.piece_count(),
            "ddr pieces {} vs plain {}",
            ddr.piece_count(),
            plain.piece_count()
        );
        assert!(
            ddr.index().max_piece_len() <= plain.index().max_piece_len(),
            "ddr max piece {} vs plain {}",
            ddr.index().max_piece_len(),
            plain.index().max_piece_len()
        );
    }

    #[test]
    fn all_equal_data_terminates() {
        let base = vec![7; 10_000];
        for policy in all_policies() {
            let mut c = CrackerColumn::from_values(base.clone());
            let mut rng = StdRng::seed_from_u64(1);
            let r = crack_select_with_policy(&mut c, 0, 7, policy, &mut rng);
            assert_eq!(r.end - r.start, 0, "policy {policy:?}");
            let r = crack_select_with_policy(&mut c, 7, 8, policy, &mut rng);
            assert_eq!(r.end - r.start, 10_000, "policy {policy:?}");
        }
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(CrackPolicy::Standard.name(), "standard");
        assert_eq!(CrackPolicy::ddc().name(), "ddc");
        assert_eq!(CrackPolicy::ddr().name(), "ddr");
        assert_eq!(CrackPolicy::Mdd1r.name(), "mdd1r");
        assert_eq!(CrackPolicy::default(), CrackPolicy::Standard);
    }
}
