//! Sideways cracking: self-organizing tuple reconstruction for
//! select-project queries over different columns.
//!
//! A plain cracker column physically reorders one attribute, which breaks
//! positional alignment with the rest of the table. Sideways cracking
//! (Idreos, Kersten, Manegold — SIGMOD 2009, ref 13 in the paper) solves
//! tuple reconstruction by maintaining **cracker maps**: for a pair of
//! attributes `(head, tail)` the map stores the two value arrays together
//! and cracks them as a unit, so after any number of selects on `head`, the
//! qualifying `tail` values are already sitting next to the qualifying
//! `head` values — no random-access positional joins needed.
//!
//! This module implements the map structure itself plus a small
//! [`MapSet`] that lazily creates one map per tail attribute, which is
//! how the engine serves `SELECT B FROM R WHERE lo <= A < hi`.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::index::PieceIndex;
use crate::Value;

/// A cracker map for an attribute pair `(head, tail)`.
///
/// `head` drives the physical organization (selection predicates are on it),
/// `tail` is carried along so projections are contiguous after cracking.
#[derive(Debug, Clone)]
pub struct CrackerMap {
    head: Vec<Value>,
    tail: Vec<Value>,
    index: PieceIndex,
    cracks_performed: u64,
}

impl CrackerMap {
    /// Creates a cracker map from aligned head/tail columns.
    ///
    /// # Panics
    ///
    /// Panics if the two columns have different lengths.
    #[must_use]
    pub fn new(head: Vec<Value>, tail: Vec<Value>) -> Self {
        assert_eq!(head.len(), tail.len(), "head and tail must be aligned");
        let len = head.len();
        CrackerMap {
            head,
            tail,
            index: PieceIndex::new(len),
            cracks_performed: 0,
        }
    }

    /// Number of tuples in the map.
    #[must_use]
    pub fn len(&self) -> usize {
        self.head.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.head.is_empty()
    }

    /// Number of pieces the head attribute is partitioned into.
    #[must_use]
    pub fn piece_count(&self) -> usize {
        self.index.piece_count()
    }

    /// Total crack actions performed.
    #[must_use]
    pub fn cracks_performed(&self) -> u64 {
        self.cracks_performed
    }

    /// The (cracked) head values.
    #[must_use]
    pub fn head(&self) -> &[Value] {
        &self.head
    }

    /// The tail values, aligned with [`CrackerMap::head`].
    #[must_use]
    pub fn tail(&self) -> &[Value] {
        &self.tail
    }

    /// Cracks the map so that head values `>= v` start at the returned
    /// position.
    pub fn crack_at(&mut self, v: Value) -> usize {
        let Some(idx) = self.index.find_piece_for_value(v) else {
            return 0;
        };
        if let Some(pos) = self.index.resolved_boundary(v) {
            return pos;
        }
        let p = self.index.piece(idx);
        // The tail array plays the role of the payload: every swap of a head
        // value is mirrored so the pair stays together.
        let off = crack_pair(
            &mut self.head[p.start..p.end],
            &mut self.tail[p.start..p.end],
            v,
        );
        let pos = p.start + off;
        self.index.split(idx, pos, v);
        self.cracks_performed += 1;
        pos
    }

    /// Answers `SELECT tail WHERE lo <= head < hi`, cracking as needed, and
    /// returns the position range of qualifying tuples.
    pub fn crack_select(&mut self, lo: Value, hi: Value) -> Range<usize> {
        if hi <= lo || self.head.is_empty() {
            return 0..0;
        }
        let lo_idx = self.index.find_piece_for_value(lo);
        let hi_idx = self.index.find_piece_for_value(hi);
        let lo_resolved = self.index.resolved_boundary(lo).is_some();
        let hi_resolved = self.index.resolved_boundary(hi).is_some();
        if let (Some(a), Some(b)) = (lo_idx, hi_idx) {
            if a == b && !lo_resolved && !hi_resolved && !self.index.piece(a).sorted {
                let p = self.index.piece(a);
                let (off_a, off_b) = crack_pair_three(
                    &mut self.head[p.start..p.end],
                    &mut self.tail[p.start..p.end],
                    lo,
                    hi,
                );
                let abs_a = p.start + off_a;
                let abs_b = p.start + off_b;
                self.index.split(a, abs_a, lo);
                // The index is non-empty after the split above; if the hi
                // lookup fails anyway, skipping the second boundary only
                // loses refinement — the partition itself is already done.
                if let Some(idx_for_hi) = self.index.find_piece_for_value(hi) {
                    self.index.split(idx_for_hi, abs_b, hi);
                }
                self.cracks_performed += 1;
                return abs_a..abs_b;
            }
        }
        let start = self.crack_at(lo);
        let end = self.crack_at(hi);
        start..end
    }

    /// Projects the tail values of a range produced by
    /// [`CrackerMap::crack_select`].
    #[must_use]
    pub fn project(&self, range: Range<usize>) -> &[Value] {
        &self.tail[range]
    }

    /// Validates the structural invariants: the piece index is consistent
    /// with the head values and the head/tail arrays are aligned.
    #[must_use]
    pub fn validate(&self) -> bool {
        self.head.len() == self.tail.len() && self.index.validate(&self.head)
    }
}

/// Partitions the aligned `(head, tail)` pair around `pivot`, keeping pairs
/// together; returns the number of head values `< pivot`.
fn crack_pair(head: &mut [Value], tail: &mut [Value], pivot: Value) -> usize {
    debug_assert_eq!(head.len(), tail.len());
    if head.is_empty() {
        return 0;
    }
    let mut lo = 0usize;
    let mut hi = head.len();
    while lo < hi {
        if head[lo] < pivot {
            lo += 1;
        } else {
            hi -= 1;
            head.swap(lo, hi);
            tail.swap(lo, hi);
        }
    }
    lo
}

/// Three-way partition of the aligned `(head, tail)` pair.
fn crack_pair_three(
    head: &mut [Value],
    tail: &mut [Value],
    lo: Value,
    hi: Value,
) -> (usize, usize) {
    debug_assert_eq!(head.len(), tail.len());
    if hi <= lo {
        let a = crack_pair(head, tail, lo);
        return (a, a);
    }
    let mut lt = 0usize;
    let mut i = 0usize;
    let mut gt = head.len();
    while i < gt {
        let v = head[i];
        if v < lo {
            head.swap(i, lt);
            tail.swap(i, lt);
            lt += 1;
            i += 1;
        } else if v >= hi {
            gt -= 1;
            head.swap(i, gt);
            tail.swap(i, gt);
        } else {
            i += 1;
        }
    }
    (lt, gt)
}

/// A lazily populated set of cracker maps sharing one head attribute:
/// `SELECT B FROM R WHERE pred(A)`, `SELECT C FROM R WHERE pred(A)`, … each
/// get their own map keyed by the tail attribute's identifier.
#[derive(Debug, Default)]
pub struct MapSet {
    maps: BTreeMap<u32, CrackerMap>,
}

impl MapSet {
    /// Creates an empty map set.
    #[must_use]
    pub fn new() -> Self {
        MapSet::default()
    }

    /// Number of materialized maps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// Whether no map has been materialized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// Whether a map for `tail_id` exists already.
    #[must_use]
    pub fn contains(&self, tail_id: u32) -> bool {
        self.maps.contains_key(&tail_id)
    }

    /// Returns the map for `tail_id`, creating it from the supplied base
    /// columns on first use (the lazy, on-demand materialization of partial
    /// sideways cracking).
    pub fn map_for(
        &mut self,
        tail_id: u32,
        head: impl FnOnce() -> Vec<Value>,
        tail: impl FnOnce() -> Vec<Value>,
    ) -> &mut CrackerMap {
        self.maps
            .entry(tail_id)
            .or_insert_with(|| CrackerMap::new(head(), tail()))
    }

    /// Read access to an existing map.
    #[must_use]
    pub fn get(&self, tail_id: u32) -> Option<&CrackerMap> {
        self.maps.get(&tail_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns() -> (Vec<Value>, Vec<Value>) {
        let head = vec![50, 10, 90, 30, 70, 20, 80, 40, 60, 100];
        // tail[i] = head[i] * 1000 + i so we can verify pairings exactly.
        let tail = head
            .iter()
            .enumerate()
            .map(|(i, &h)| h * 1000 + i as Value)
            .collect();
        (head, tail)
    }

    fn expected_tails(head: &[Value], tail: &[Value], lo: Value, hi: Value) -> Vec<Value> {
        let mut out: Vec<Value> = head
            .iter()
            .zip(tail)
            .filter(|(&h, _)| h >= lo && h < hi)
            .map(|(_, &t)| t)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn select_project_returns_matching_tail_values() {
        let (head, tail) = columns();
        let mut map = CrackerMap::new(head.clone(), tail.clone());
        for &(lo, hi) in &[(25, 75), (10, 20), (0, 1000), (60, 60), (95, 40)] {
            let range = map.crack_select(lo, hi);
            let mut projected = map.project(range).to_vec();
            projected.sort_unstable();
            assert_eq!(
                projected,
                expected_tails(&head, &tail, lo, hi),
                "[{lo},{hi})"
            );
            assert!(map.validate());
        }
        assert!(map.piece_count() > 2);
        assert!(map.cracks_performed() >= 2);
    }

    #[test]
    fn pairs_stay_aligned_through_arbitrary_cracking() {
        let (head, tail) = columns();
        let mut map = CrackerMap::new(head, tail);
        for pivot in [15, 85, 45, 65, 25, 95, 5] {
            map.crack_at(pivot);
        }
        assert!(map.validate());
        for (h, t) in map.head().iter().zip(map.tail()) {
            assert_eq!(t / 1000, *h, "tail {t} no longer belongs to head {h}");
        }
    }

    #[test]
    fn empty_and_degenerate_maps() {
        let mut empty = CrackerMap::new(vec![], vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.crack_select(1, 10), 0..0);
        assert!(empty.validate());
        let (head, tail) = columns();
        let mut map = CrackerMap::new(head, tail);
        assert_eq!(map.crack_select(40, 40), 0..0);
        assert_eq!(map.crack_select(200, 300).len(), 0);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_columns_are_rejected() {
        let _ = CrackerMap::new(vec![1, 2, 3], vec![1]);
    }

    #[test]
    fn map_set_materializes_lazily_and_reuses_maps() {
        let (head, tail) = columns();
        let other_tail: Vec<Value> = head.iter().map(|&h| -h).collect();
        let mut set = MapSet::new();
        assert!(set.is_empty());
        {
            let map_b = set.map_for(1, || head.clone(), || tail.clone());
            let r = map_b.crack_select(25, 75);
            assert!(!map_b.project(r).is_empty());
        }
        assert_eq!(set.len(), 1);
        assert!(set.contains(1));
        assert!(!set.contains(2));
        {
            let map_c = set.map_for(2, || head.clone(), || other_tail.clone());
            let r = map_c.crack_select(25, 75);
            assert!(map_c.project(r).iter().all(|&v| v < 0));
        }
        assert_eq!(set.len(), 2);
        // Re-requesting map 1 must not rebuild it (cracks persist).
        let cracks_before = set.get(1).unwrap().cracks_performed();
        let map_b = set.map_for(
            1,
            || panic!("must not rebuild"),
            || panic!("must not rebuild"),
        );
        assert_eq!(map_b.cracks_performed(), cracks_before);
    }

    #[test]
    fn duplicate_head_values_keep_all_their_tails() {
        let head = vec![5, 5, 5, 1, 9, 5];
        let tail = vec![50, 51, 52, 10, 90, 53];
        let mut map = CrackerMap::new(head, tail);
        let range = map.crack_select(5, 6);
        let mut projected = map.project(range).to_vec();
        projected.sort_unstable();
        assert_eq!(projected, vec![50, 51, 52, 53]);
    }
}
