//! Concurrency control for adaptive indexing.
//!
//! Cracking turns read-only selects into structural modifications, so some
//! form of concurrency control is needed even for read-only workloads
//! (Graefe, Halim, Idreos, Kuno, Manegold — PVLDB 2012). The scheme here is
//! the pragmatic one used in practice: a per-column reader/writer latch.
//! A select whose bounds are already resolved by the cracker index is a pure
//! read and only takes the shared latch; a select that has to crack (or an
//! idle-time refinement action) takes the exclusive latch for the duration
//! of the partitioning pass. Because cracking touches exactly one column,
//! queries on different columns never contend.

use std::ops::Range;

use parking_lot::RwLock;
use rand::Rng;

use holistic_storage::Column;

use crate::cracker::CrackerColumn;
use crate::Value;

/// Counters describing how often the fast (shared) path could be used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatchStats {
    /// Selects answered under the shared latch (no cracking needed).
    pub shared_selects: u64,
    /// Selects that had to take the exclusive latch to crack.
    pub exclusive_selects: u64,
    /// Auxiliary refinement actions (always exclusive).
    pub refinements: u64,
}

/// A cracker column protected by a reader/writer latch.
#[derive(Debug)]
pub struct ConcurrentCrackerColumn {
    inner: RwLock<CrackerColumn>,
    stats: RwLock<LatchStats>,
}

impl ConcurrentCrackerColumn {
    /// Wraps an existing cracker column.
    #[must_use]
    pub fn new(column: CrackerColumn) -> Self {
        ConcurrentCrackerColumn {
            inner: RwLock::new(column),
            stats: RwLock::new(LatchStats::default()),
        }
    }

    /// Creates a latch-protected cracker column from raw values.
    #[must_use]
    pub fn from_values(values: Vec<Value>) -> Self {
        Self::new(CrackerColumn::from_values(values))
    }

    /// Creates a latch-protected cracker column by copying a base column.
    #[must_use]
    pub fn from_column(column: &Column, with_rowids: bool) -> Self {
        Self::new(CrackerColumn::from_column(column, with_rowids))
    }

    /// Number of values in the column.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the column is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Current number of pieces.
    #[must_use]
    pub fn piece_count(&self) -> usize {
        self.inner.read().piece_count()
    }

    /// Latch-usage statistics.
    #[must_use]
    pub fn latch_stats(&self) -> LatchStats {
        *self.stats.read()
    }

    /// Counts the values in `[lo, hi)`, cracking if necessary.
    pub fn count(&self, lo: Value, hi: Value) -> u64 {
        let r = self.select_range(lo, hi);
        (r.end - r.start) as u64
    }

    /// Materializes the values in `[lo, hi)`, cracking if necessary.
    pub fn materialize(&self, lo: Value, hi: Value) -> Vec<Value> {
        // Fast path under the shared latch.
        {
            let guard = self.inner.read();
            if let Some(range) = guard.select_if_resolved(lo, hi) {
                self.stats.write().shared_selects += 1;
                return guard.view(range).to_vec();
            }
        }
        let mut guard = self.inner.write();
        let range = guard.crack_select(lo, hi);
        self.stats.write().exclusive_selects += 1;
        guard.view(range).to_vec()
    }

    /// Resolves the position range for `[lo, hi)`, cracking if necessary.
    ///
    /// Note the returned range is only meaningful relative to the column
    /// state at the time of the call; concurrent refinements do not move
    /// values across resolved boundaries, so counts stay stable, but callers
    /// that need the values should use [`ConcurrentCrackerColumn::materialize`].
    pub fn select_range(&self, lo: Value, hi: Value) -> Range<usize> {
        {
            let guard = self.inner.read();
            if let Some(range) = guard.select_if_resolved(lo, hi) {
                self.stats.write().shared_selects += 1;
                return range;
            }
        }
        let mut guard = self.inner.write();
        let range = guard.crack_select(lo, hi);
        self.stats.write().exclusive_selects += 1;
        range
    }

    /// Applies one auxiliary random refinement action under the exclusive
    /// latch. Returns `true` if the action introduced a new piece.
    pub fn random_crack<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        let mut guard = self.inner.write();
        self.stats.write().refinements += 1;
        guard.random_crack(rng)
    }

    /// Runs a closure with shared access to the underlying cracker column.
    pub fn with_read<T>(&self, f: impl FnOnce(&CrackerColumn) -> T) -> T {
        f(&self.inner.read())
    }

    /// Validates the underlying cracker-column invariants.
    #[must_use]
    pub fn validate(&self) -> bool {
        self.inner.read().validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn data(n: usize) -> Vec<Value> {
        (0..n as Value).map(|i| (i * 7919) % (n as Value)).collect()
    }

    fn scan_count(values: &[Value], lo: Value, hi: Value) -> u64 {
        values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
    }

    #[test]
    fn single_threaded_counts_match_scan() {
        let values = data(1000);
        let c = ConcurrentCrackerColumn::from_values(values.clone());
        for &(lo, hi) in &[(0, 100), (100, 350), (900, 1000), (500, 400)] {
            assert_eq!(c.count(lo, hi), scan_count(&values, lo, hi));
        }
        assert!(c.validate());
        assert!(c.latch_stats().exclusive_selects >= 3);
    }

    #[test]
    fn repeated_query_uses_shared_path() {
        let values = data(1000);
        let c = ConcurrentCrackerColumn::from_values(values);
        let _ = c.count(100, 200);
        let exclusive_before = c.latch_stats().exclusive_selects;
        let _ = c.count(100, 200);
        let stats = c.latch_stats();
        assert_eq!(stats.exclusive_selects, exclusive_before);
        assert!(stats.shared_selects >= 1);
    }

    #[test]
    fn materialize_returns_only_qualifying_values() {
        let values = data(500);
        let c = ConcurrentCrackerColumn::from_values(values.clone());
        let got = c.materialize(50, 150);
        assert_eq!(got.len() as u64, scan_count(&values, 50, 150));
        assert!(got.iter().all(|&v| (50..150).contains(&v)));
        // Second call takes the shared path and returns the same multiset.
        let mut again = c.materialize(50, 150);
        let mut first = got.clone();
        again.sort_unstable();
        first.sort_unstable();
        assert_eq!(again, first);
    }

    #[test]
    fn concurrent_queries_and_refinements_are_correct() {
        let n = 20_000;
        let values = data(n);
        let expected: Vec<(Value, Value, u64)> = (0..16)
            .map(|i| {
                let lo = (i * 1000) % (n as Value);
                let hi = lo + 500;
                (lo, hi, scan_count(&values, lo, hi))
            })
            .collect();
        let column = Arc::new(ConcurrentCrackerColumn::from_values(values));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let column = Arc::clone(&column);
            let expected = expected.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                for round in 0..8 {
                    for &(lo, hi, want) in &expected {
                        assert_eq!(column.count(lo, hi), want, "thread {t} round {round}");
                    }
                    // Interleave idle-time style refinements.
                    for _ in 0..5 {
                        column.random_crack(&mut rng);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        assert!(column.validate());
        assert!(column.piece_count() > 16);
        let stats = column.latch_stats();
        assert!(stats.refinements == 4 * 8 * 5);
        assert!(
            stats.shared_selects > 0,
            "expected some shared-path selects"
        );
    }

    #[test]
    fn empty_column() {
        let c = ConcurrentCrackerColumn::from_values(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.count(0, 10), 0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(!c.random_crack(&mut rng));
    }

    #[test]
    fn with_read_exposes_column_state() {
        let c = ConcurrentCrackerColumn::from_values(data(100));
        let _ = c.count(10, 20);
        let pieces = c.with_read(|col| col.piece_count());
        assert!(pieces >= 2);
    }
}
