//! Concurrency control for adaptive indexing.
//!
//! Cracking turns read-only selects into structural modifications, so some
//! form of concurrency control is needed even for read-only workloads
//! (Graefe, Halim, Idreos, Kuno, Manegold — PVLDB 2012). The scheme here is
//! the pragmatic one used in practice: a per-column reader/writer latch.
//! A select whose bounds are already *answerable* — resolved by the cracker
//! index, or binary-searchable inside a sorted piece carrying a prefix-sum
//! array — is a pure read and only takes the shared latch; a select that
//! has to crack (or an idle-time refinement action, or a prefix-sum build)
//! takes the exclusive latch for the duration of the pass. Because cracking
//! touches exactly one column, queries on different columns never contend.
//!
//! A single latch per column still serializes all cracking *writers* on a
//! hot column, so the column can also be split into fixed-extent **shards**
//! (the bundlebase `RowId = {block, offset}` layout: shard `rowid / extent`,
//! offset `rowid % extent`). Each shard owns its own piece table, cached
//! sums, prefix arrays and ordered latch; a range query fans out across the
//! shards, composes the per-shard [`RangeAggregate`]s, and classifies the
//! composed answer against the aggregate cache exactly once — so a sorted,
//! prefix-seeded column reports the same zero-read hit whether it is one
//! shard or many. Writers cracking disjoint shards proceed in parallel, and
//! a large cold crack parallelizes *within* one query by handing each
//! pending shard to its own worker thread.
//!
//! Lock order is machine-checked: the shard-*list* lock sits at
//! [`LockLevel::Shard`], each shard's piece-table latch at
//! [`LockLevel::Column`], and a thread never holds two shard latches at
//! once — the fan-out visits shards one at a time, and intra-query
//! parallelism uses one thread per shard (each with its own empty lock
//! stack), which is exactly what same-level enforcement requires.
//!
//! The latch-usage counters are plain atomics: the shared select path is
//! exactly the path the latch exists to parallelize, so it must not
//! serialize on a statistics lock.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use holistic_sync::{LockLevel, OrderedRwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use holistic_storage::Column;

use crate::corrupt::CorruptionKind;
use crate::cracker::{CrackerColumn, RangeAggregate};
use crate::kernels::{CrackKernel, KernelDispatches};
use crate::piece::Piece;
use crate::stochastic::{crack_select_batch_with_policy, crack_select_with_policy, CrackPolicy};
use crate::Value;

/// Extent sentinel for a column that was never sharded: one shard holds the
/// whole column and inserts never spill. Distinct from a finite extent that
/// happens to exceed the current length, where growth *does* spill.
const UNSHARDED: usize = usize::MAX;

/// Minimum total number of values across the shards a query still has to
/// crack before the fan-out pays for worker threads. Below this, a cold
/// crack runs the pending shards sequentially on the calling thread.
const PARALLEL_FANOUT_MIN: usize = 1 << 16;

/// Counters describing how often the fast (shared) path could be used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatchStats {
    /// Selects answered under the shared latch (no cracking needed).
    pub shared_selects: u64,
    /// Selects that had to take the exclusive latch to crack.
    pub exclusive_selects: u64,
    /// *Effective* auxiliary refinement actions (always exclusive). An
    /// action that did not introduce a new piece — empty column, converged
    /// column, pivot already a boundary — is not work and is not counted.
    pub refinements: u64,
    /// Count/sum answers composed entirely from cached piece sums (zero
    /// data-array reads for the aggregate).
    pub aggregate_hits: u64,
    /// Count/sum answers that needed at least one prefix-sum difference —
    /// bounds landing *inside* a sorted piece — and still read no data.
    pub aggregate_prefix: u64,
    /// Count/sum answers that mixed cached piece sums with scanned pieces.
    pub aggregate_partials: u64,
    /// Count/sum answers with no cached piece sum available at all.
    pub aggregate_misses: u64,
}

/// How a batch of count/sum answers was produced by the per-piece aggregate
/// cache. One query counts as a *hit* when its sum was composed purely from
/// cached whole-piece sums (or its range was empty), a *prefix* hit when it
/// needed at least one prefix-sum difference — bounds inside a sorted piece
/// — while still reading no data, a *partial* when cached sums or prefix
/// differences covered some pieces but others had to be scanned, and a
/// *miss* when no piece of the range carried any cache. `scanned_values`
/// totals the data-array reads the scan fallback performed — 0 means the
/// whole batch's aggregates were answered from metadata alone.
/// Materialization reads are not counted: the cache can only ever serve
/// aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregateCacheDelta {
    /// Queries answered entirely from cached whole-piece sums.
    pub hits: u64,
    /// Queries answered zero-read via at least one prefix-sum difference.
    pub prefix: u64,
    /// Queries answered from a mix of cached/prefix pieces and scans.
    pub partials: u64,
    /// Queries answered without any cached sum or prefix.
    pub misses: u64,
    /// Data values read by the aggregate scan fallback.
    pub scanned_values: u64,
}

impl AggregateCacheDelta {
    /// Classifies one composed range aggregate into the delta.
    fn record(&mut self, agg: &crate::cracker::RangeAggregate) {
        if agg.scanned_pieces == 0 {
            if agg.prefix_pieces > 0 {
                self.prefix += 1;
            } else {
                self.hits += 1;
            }
        } else if agg.cached_pieces > 0 || agg.prefix_pieces > 0 {
            self.partials += 1;
        } else {
            self.misses += 1;
        }
        self.scanned_values += agg.scanned_values;
    }

    /// Queries answered without a single data-array read (whole-piece hits
    /// plus prefix hits).
    #[must_use]
    pub fn zero_read(&self) -> u64 {
        self.hits + self.prefix
    }

    /// Component-wise accumulation.
    pub fn add(&mut self, other: AggregateCacheDelta) {
        self.hits += other.hits;
        self.prefix += other.prefix;
        self.partials += other.partials;
        self.misses += other.misses;
        self.scanned_values += other.scanned_values;
    }
}

/// Lock-free storage behind [`LatchStats`].
#[derive(Debug, Default)]
struct AtomicLatchStats {
    shared_selects: AtomicU64,
    exclusive_selects: AtomicU64,
    refinements: AtomicU64,
    aggregate_hits: AtomicU64,
    aggregate_prefix: AtomicU64,
    aggregate_partials: AtomicU64,
    aggregate_misses: AtomicU64,
}

impl AtomicLatchStats {
    fn snapshot(&self) -> LatchStats {
        LatchStats {
            shared_selects: self.shared_selects.load(Ordering::Relaxed),
            exclusive_selects: self.exclusive_selects.load(Ordering::Relaxed),
            refinements: self.refinements.load(Ordering::Relaxed),
            aggregate_hits: self.aggregate_hits.load(Ordering::Relaxed),
            aggregate_prefix: self.aggregate_prefix.load(Ordering::Relaxed),
            aggregate_partials: self.aggregate_partials.load(Ordering::Relaxed),
            aggregate_misses: self.aggregate_misses.load(Ordering::Relaxed),
        }
    }

    fn record_cache(&self, delta: AggregateCacheDelta) {
        if delta.hits > 0 {
            self.aggregate_hits.fetch_add(delta.hits, Ordering::Relaxed);
        }
        if delta.prefix > 0 {
            self.aggregate_prefix
                .fetch_add(delta.prefix, Ordering::Relaxed);
        }
        if delta.partials > 0 {
            self.aggregate_partials
                .fetch_add(delta.partials, Ordering::Relaxed);
        }
        if delta.misses > 0 {
            self.aggregate_misses
                .fetch_add(delta.misses, Ordering::Relaxed);
        }
    }
}

/// Everything one select through the latch produced, so callers get the
/// answer, the post-select index shape and the kernel-dispatch delta in a
/// single latch acquisition.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectOutcome {
    /// Number of qualifying values.
    pub count: u64,
    /// Sum of the qualifying values.
    pub sum: i128,
    /// The qualifying values, if materialization was requested.
    pub values: Option<Vec<Value>>,
    /// Piece count right after the select.
    pub piece_count: usize,
    /// Average piece length right after the select.
    pub avg_piece_len: f64,
    /// Crack-kernel dispatches this select performed (zero on the shared
    /// fast path).
    pub dispatches: KernelDispatches,
    /// How the aggregate cache served this select's count/sum.
    pub cache: AggregateCacheDelta,
}

/// One query's answer within a [`BatchSelectOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// Number of qualifying values.
    pub count: u64,
    /// Sum of the qualifying values.
    pub sum: i128,
    /// The qualifying values, if materialization was requested.
    pub values: Option<Vec<Value>>,
}

/// Everything one *batched* select through the latch produced: per-query
/// answers plus a single merged piece-shape / kernel-dispatch delta for the
/// whole batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSelectOutcome {
    /// Per-query answers, in the order the queries were passed.
    pub answers: Vec<QueryAnswer>,
    /// Piece count right after the batch.
    pub piece_count: usize,
    /// Average piece length right after the batch.
    pub avg_piece_len: f64,
    /// Crack-kernel dispatches the whole batch performed (zero when every
    /// query was answered on the shared fast path).
    pub dispatches: KernelDispatches,
    /// How the aggregate cache served the batch's count/sum answers
    /// (one hit/partial/miss classification per query).
    pub cache: AggregateCacheDelta,
}

/// Everything one *batched* hot-range refinement pass through the latch
/// produced (see [`ConcurrentCrackerColumn::refine_in_ranges`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRefineOutcome {
    /// How many of the applied actions introduced a new piece.
    pub splits: u64,
    /// Piece count right after the pass.
    pub piece_count: usize,
    /// Average piece length right after the pass.
    pub avg_piece_len: f64,
    /// Crack-kernel dispatches the whole pass performed.
    pub dispatches: KernelDispatches,
}

/// Everything one auxiliary refinement action through the latch produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineOutcome {
    /// Whether the action introduced a new piece.
    pub split: bool,
    /// Piece count right after the action.
    pub piece_count: usize,
    /// Average piece length right after the action.
    pub avg_piece_len: f64,
    /// Crack-kernel dispatches this action performed.
    pub dispatches: KernelDispatches,
}

/// One fixed-extent shard: a cracker column (its own piece table, cached
/// sums and prefix arrays) behind its own ordered piece-table latch.
#[derive(Debug)]
struct Shard {
    inner: OrderedRwLock<CrackerColumn>,
}

impl Shard {
    fn new(column: CrackerColumn) -> Self {
        Shard {
            inner: OrderedRwLock::new(LockLevel::Column, "ConcurrentCrackerColumn::shard", column),
        }
    }
}

/// One shard's contribution to a fanned-out select, composed by the caller.
struct ShardPart {
    agg: RangeAggregate,
    values: Option<Vec<Value>>,
    piece_count: usize,
    len: usize,
    dispatches: KernelDispatches,
    cracked: bool,
}

/// One shard's contribution to a fanned-out batch select.
struct ShardBatchPart {
    answers: Vec<(RangeAggregate, Option<Vec<Value>>)>,
    piece_count: usize,
    len: usize,
    dispatches: KernelDispatches,
    cracked: bool,
}

/// A cracker column protected by reader/writer latches, optionally split
/// into fixed-extent shards (see the module docs). An unsharded column is
/// exactly one shard; every path then collapses to the single-latch scheme.
#[derive(Debug)]
pub struct ConcurrentCrackerColumn {
    /// Append-only shard list behind the [`LockLevel::Shard`] lock: read to
    /// fan a query out, written only when an insert spills a new shard.
    shards: OrderedRwLock<Vec<Arc<Shard>>>,
    extent: usize,
    stats: AtomicLatchStats,
}

impl ConcurrentCrackerColumn {
    fn with_extent(cols: Vec<CrackerColumn>, extent: usize) -> Self {
        let mut cols = cols;
        if cols.is_empty() {
            cols.push(CrackerColumn::from_values(vec![]));
        }
        ConcurrentCrackerColumn {
            shards: OrderedRwLock::new(
                LockLevel::Shard,
                "ConcurrentCrackerColumn::shards",
                cols.into_iter().map(|c| Arc::new(Shard::new(c))).collect(),
            ),
            extent,
            stats: AtomicLatchStats::default(),
        }
    }

    /// Wraps an existing cracker column (unsharded: one shard, no spill).
    #[must_use]
    pub fn new(column: CrackerColumn) -> Self {
        Self::with_extent(vec![column], UNSHARDED)
    }

    /// Creates a latch-protected cracker column from raw values.
    #[must_use]
    pub fn from_values(values: Vec<Value>) -> Self {
        Self::new(CrackerColumn::from_values(values))
    }

    /// Creates a latch-protected cracker column by copying a base column.
    #[must_use]
    pub fn from_column(column: &Column, with_rowids: bool) -> Self {
        Self::new(CrackerColumn::from_column(column, with_rowids))
    }

    /// Creates a sharded column from raw values: consecutive chunks of
    /// `extent` values per shard (`extent == 0` means unsharded).
    #[must_use]
    pub fn from_values_sharded(values: Vec<Value>, extent: usize) -> Self {
        if extent == 0 {
            return Self::from_values(values);
        }
        let cols = values
            .chunks(extent)
            .map(|c| CrackerColumn::from_values(c.to_vec()))
            .collect();
        Self::with_extent(cols, extent)
    }

    /// Creates a sharded column by copying a base column: shard `k` holds
    /// rows `[k * extent, (k + 1) * extent)`, carrying the matching global
    /// row ids when `with_rowids` (the `{block, offset}` layout — the row-id
    /// arrays are identical to the unsharded column's, just partitioned).
    /// `extent == 0` means unsharded.
    #[must_use]
    pub fn from_column_sharded(
        column: &Column,
        with_rowids: bool,
        kernel: CrackKernel,
        extent: usize,
    ) -> Self {
        if extent == 0 || extent >= column.len() {
            let col = CrackerColumn::from_column(column, with_rowids).with_kernel(kernel);
            let extent = if extent == 0 { UNSHARDED } else { extent };
            return Self::with_extent(vec![col], extent);
        }
        let cols = column
            .values()
            .chunks(extent)
            .enumerate()
            .map(|(k, chunk)| {
                let col = if with_rowids {
                    CrackerColumn::from_values_with_rowid_offset(
                        chunk.to_vec(),
                        (k * extent) as holistic_storage::RowId,
                    )
                } else {
                    CrackerColumn::from_values(chunk.to_vec())
                };
                col.with_kernel(kernel)
            })
            .collect();
        Self::with_extent(cols, extent)
    }

    /// Reassembles a sharded column from already-validated per-shard
    /// cracker columns (the recovery path: each shard's learned state is
    /// decoded and validated independently). `extent == 0` means unsharded.
    #[must_use]
    pub fn from_shards(shards: Vec<CrackerColumn>, extent: usize) -> Self {
        let extent = if extent == 0 { UNSHARDED } else { extent };
        Self::with_extent(shards, extent)
    }

    /// Snapshot of the shard handles; the list lock is released before any
    /// shard latch is taken, so the lock order is always `Shard` →
    /// (one) `Column`.
    fn shard_handles(&self) -> Vec<Arc<Shard>> {
        self.shards.read().iter().map(Arc::clone).collect()
    }

    /// The only shard, when the column currently has exactly one — the
    /// single-latch fast paths key off this.
    fn sole_shard(&self) -> Option<Arc<Shard>> {
        let list = self.shards.read();
        (list.len() == 1).then(|| Arc::clone(&list[0]))
    }

    /// Number of shards (1 for an unsharded column).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.read().len()
    }

    /// The fixed shard extent, or `None` for an unsharded column.
    #[must_use]
    pub fn shard_extent(&self) -> Option<usize> {
        (self.extent != UNSHARDED).then_some(self.extent)
    }

    /// Number of values in the column (summed over shards).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shard_handles()
            .iter()
            .map(|s| s.inner.read().len())
            .sum()
    }

    /// Whether the column is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current number of pieces (summed over shards).
    #[must_use]
    pub fn piece_count(&self) -> usize {
        self.shard_handles()
            .iter()
            .map(|s| s.inner.read().piece_count())
            .sum()
    }

    /// Current average piece length (over all shards' pieces).
    #[must_use]
    pub fn avg_piece_len(&self) -> f64 {
        let shards = self.shard_handles();
        if shards.len() == 1 {
            return shards[0].inner.read().avg_piece_len();
        }
        let (mut len, mut pieces) = (0usize, 0usize);
        for s in &shards {
            let g = s.inner.read();
            len += g.len();
            pieces += g.piece_count();
        }
        if pieces == 0 {
            0.0
        } else {
            len as f64 / pieces as f64
        }
    }

    /// Total crack actions applied so far (query-driven plus auxiliary,
    /// summed over shards).
    #[must_use]
    pub fn cracks_performed(&self) -> u64 {
        self.shard_handles()
            .iter()
            .map(|s| s.inner.read().cracks_performed())
            .sum()
    }

    /// Latch-usage statistics.
    #[must_use]
    pub fn latch_stats(&self) -> LatchStats {
        self.stats.snapshot()
    }

    /// One shared/exclusive bump for a whole (possibly fanned-out) select.
    fn bump_select(&self, cracked: bool, queries: u64) {
        if cracked {
            self.stats
                .exclusive_selects
                .fetch_add(queries, Ordering::Relaxed);
        } else {
            self.stats
                .shared_selects
                .fetch_add(queries, Ordering::Relaxed);
        }
    }

    /// Resolves `[lo, hi)` on every shard (cracking where needed, one shard
    /// latch at a time) and returns the total qualifying count plus whether
    /// any shard had to crack.
    fn resolve_count(&self, lo: Value, hi: Value) -> (u64, bool) {
        let mut total = 0u64;
        let mut cracked = false;
        for sh in self.shard_handles() {
            let resolved = { sh.inner.read().select_if_resolved(lo, hi) };
            let range = match resolved {
                Some(r) => r,
                None => {
                    cracked = true;
                    sh.inner.write().crack_select(lo, hi)
                }
            };
            total += (range.end - range.start) as u64;
        }
        (total, cracked)
    }

    /// Counts the values in `[lo, hi)`, cracking if necessary.
    pub fn count(&self, lo: Value, hi: Value) -> u64 {
        if let Some(shard) = self.sole_shard() {
            {
                let guard = shard.inner.read();
                if let Some(range) = guard.select_if_resolved(lo, hi) {
                    self.stats.shared_selects.fetch_add(1, Ordering::Relaxed);
                    return (range.end - range.start) as u64;
                }
            }
            let mut guard = shard.inner.write();
            let range = guard.crack_select(lo, hi);
            self.stats.exclusive_selects.fetch_add(1, Ordering::Relaxed);
            return (range.end - range.start) as u64;
        }
        let (total, cracked) = self.resolve_count(lo, hi);
        self.bump_select(cracked, 1);
        total
    }

    /// Materializes the values in `[lo, hi)`, cracking if necessary. Values
    /// are returned in shard order (row-id order of the original blocks).
    pub fn materialize(&self, lo: Value, hi: Value) -> Vec<Value> {
        if let Some(shard) = self.sole_shard() {
            // Fast path under the shared latch.
            {
                let guard = shard.inner.read();
                if let Some(range) = guard.select_if_resolved(lo, hi) {
                    self.stats.shared_selects.fetch_add(1, Ordering::Relaxed);
                    return guard.view(range).to_vec();
                }
            }
            let mut guard = shard.inner.write();
            let range = guard.crack_select(lo, hi);
            self.stats.exclusive_selects.fetch_add(1, Ordering::Relaxed);
            return guard.view(range).to_vec();
        }
        let mut out = Vec::new();
        let mut cracked = false;
        for sh in self.shard_handles() {
            let resolved = {
                let guard = sh.inner.read();
                guard
                    .select_if_resolved(lo, hi)
                    .map(|r| guard.view(r).to_vec())
            };
            match resolved {
                Some(mut v) => out.append(&mut v),
                None => {
                    cracked = true;
                    let mut guard = sh.inner.write();
                    let range = guard.crack_select(lo, hi);
                    out.extend_from_slice(guard.view(range));
                }
            }
        }
        self.bump_select(cracked, 1);
        out
    }

    /// Resolves the position range for `[lo, hi)`, cracking if necessary.
    ///
    /// Note the returned range is only meaningful relative to the column
    /// state at the time of the call; concurrent refinements do not move
    /// values across resolved boundaries, so counts stay stable, but callers
    /// that need the values should use [`ConcurrentCrackerColumn::materialize`].
    /// On a sharded column positions are per-shard, so the returned range is
    /// count-only: `0..count`.
    pub fn select_range(&self, lo: Value, hi: Value) -> Range<usize> {
        if let Some(shard) = self.sole_shard() {
            {
                let guard = shard.inner.read();
                if let Some(range) = guard.select_if_resolved(lo, hi) {
                    self.stats.shared_selects.fetch_add(1, Ordering::Relaxed);
                    return range;
                }
            }
            let mut guard = shard.inner.write();
            let range = guard.crack_select(lo, hi);
            self.stats.exclusive_selects.fetch_add(1, Ordering::Relaxed);
            return range;
        }
        let (total, cracked) = self.resolve_count(lo, hi);
        self.bump_select(cracked, 1);
        0..total as usize
    }

    /// Answers the range select `[lo, hi)` under the given cracking policy,
    /// returning count, sum, (optionally) the qualifying values and the
    /// kernel-dispatch delta in one latch acquisition.
    ///
    /// If both bounds are already resolved by the cracker index — or land
    /// inside sorted pieces whose prefix-sum arrays are built, where binary
    /// search resolves them read-only — the answer is produced entirely
    /// under the shared latch and no reorganization happens: on a sorted,
    /// prefix-seeded region arbitrary range aggregates never take the write
    /// latch and never fragment the piece table. Stochastic policies only
    /// inject auxiliary splits on the exclusive (cracking) path, where they
    /// pay for themselves.
    pub fn select_with_policy<R: Rng + ?Sized>(
        &self,
        lo: Value,
        hi: Value,
        materialize: bool,
        policy: CrackPolicy,
        rng: &mut R,
    ) -> SelectOutcome {
        if let Some(shard) = self.sole_shard() {
            // Fast path: both bounds answerable, answer under the shared latch.
            {
                let guard = shard.inner.read();
                if let Some(range) = guard.select_if_answerable(lo, hi) {
                    self.stats.shared_selects.fetch_add(1, Ordering::Relaxed);
                    return self.outcome_for(
                        &guard,
                        range,
                        lo,
                        hi,
                        materialize,
                        KernelDispatches::default(),
                    );
                }
            }
            let mut guard = shard.inner.write();
            // Re-check under the exclusive latch: a contender that queued on
            // the same bounds may have resolved them already — re-running the
            // policy then would inject redundant auxiliary splits (Mdd1r/DDx)
            // and over-fragment the index.
            if let Some(range) = guard.select_if_answerable(lo, hi) {
                self.stats.shared_selects.fetch_add(1, Ordering::Relaxed);
                return self.outcome_for(
                    &guard,
                    range,
                    lo,
                    hi,
                    materialize,
                    KernelDispatches::default(),
                );
            }
            let before = guard.kernel_dispatches();
            let range = crack_select_with_policy(&mut guard, lo, hi, policy, rng);
            self.stats.exclusive_selects.fetch_add(1, Ordering::Relaxed);
            let delta = guard.kernel_dispatches().since(before);
            return self.outcome_for(&guard, range, lo, hi, materialize, delta);
        }
        self.select_with_policy_fanout(lo, hi, materialize, policy, rng)
    }

    /// The multi-shard select: probe every shard read-only, crack the
    /// pending shards (in parallel for a large cold crack), compose the
    /// per-shard aggregates and classify the composed answer once.
    fn select_with_policy_fanout<R: Rng + ?Sized>(
        &self,
        lo: Value,
        hi: Value,
        materialize: bool,
        policy: CrackPolicy,
        rng: &mut R,
    ) -> SelectOutcome {
        let shards = self.shard_handles();
        let mut parts: Vec<Option<ShardPart>> = Vec::new();
        parts.resize_with(shards.len(), || None);
        let mut pending: Vec<(usize, Arc<Shard>, u64)> = Vec::new();
        let mut pending_len = 0usize;
        for (i, sh) in shards.iter().enumerate() {
            let guard = sh.inner.read();
            match guard.select_if_answerable(lo, hi) {
                Some(range) => parts[i] = Some(Self::part_for(&guard, range, lo, hi, materialize)),
                None => {
                    pending_len += guard.len();
                    drop(guard);
                    pending.push((i, Arc::clone(sh), 0));
                }
            }
        }
        // Fork one deterministic seed per pending shard, in shard order, so
        // the sequential and parallel crack paths consume the caller's rng
        // identically.
        for p in &mut pending {
            p.2 = rng.next_u64();
        }
        let parallel = pending.len() > 1 && pending_len >= PARALLEL_FANOUT_MIN;
        let results = crack_pending(pending, parallel, |sh, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut guard = sh.inner.write();
            // Re-check under the exclusive latch (see the single-shard path).
            if let Some(range) = guard.select_if_answerable(lo, hi) {
                return Self::part_for(&guard, range, lo, hi, materialize);
            }
            let before = guard.kernel_dispatches();
            let range = crack_select_with_policy(&mut guard, lo, hi, policy, &mut rng);
            let delta = guard.kernel_dispatches().since(before);
            let mut part = Self::part_for(&guard, range, lo, hi, materialize);
            part.dispatches = delta;
            part.cracked = true;
            part
        });
        for (i, part) in results {
            parts[i] = Some(part);
        }
        self.compose_select(parts, materialize)
    }

    /// One shard's answer over its resolved position range (no cache
    /// classification — that happens once, on the composed aggregate).
    fn part_for(
        column: &CrackerColumn,
        range: Range<usize>,
        lo: Value,
        hi: Value,
        materialize: bool,
    ) -> ShardPart {
        let agg = column.aggregate_range(range.clone(), lo, hi);
        ShardPart {
            agg,
            values: materialize.then(|| column.view(range).to_vec()),
            piece_count: column.piece_count(),
            len: column.len(),
            dispatches: KernelDispatches::default(),
            cracked: false,
        }
    }

    /// Composes per-shard parts into one outcome: aggregates sum
    /// component-wise, the composed aggregate is classified against the
    /// cache exactly once, and one shared/exclusive select is recorded.
    fn compose_select(&self, parts: Vec<Option<ShardPart>>, materialize: bool) -> SelectOutcome {
        let mut agg = RangeAggregate::default();
        let mut dispatches = KernelDispatches::default();
        let (mut piece_count, mut total_len) = (0usize, 0usize);
        let mut values = materialize.then(Vec::new);
        let mut cracked = false;
        for part in parts.into_iter().flatten() {
            add_aggregate(&mut agg, &part.agg);
            dispatches.add(part.dispatches);
            piece_count += part.piece_count;
            total_len += part.len;
            cracked |= part.cracked;
            if let (Some(out), Some(mut vs)) = (values.as_mut(), part.values) {
                out.append(&mut vs);
            }
        }
        let mut cache = AggregateCacheDelta::default();
        cache.record(&agg);
        self.stats.record_cache(cache);
        self.bump_select(cracked, 1);
        SelectOutcome {
            count: agg.count,
            sum: agg.sum,
            values,
            piece_count,
            avg_piece_len: if piece_count == 0 {
                0.0
            } else {
                total_len as f64 / piece_count as f64
            },
            dispatches,
            cache,
        }
    }

    /// Degraded-mode answer: serves `[lo, hi)` entirely under the shared
    /// latch if the bounds are already answerable read-only (resolved
    /// crack boundaries, or binary search inside prefix-seeded sorted
    /// pieces — [`CrackerColumn::select_if_answerable`]), and returns
    /// `None` when answering would require cracking.
    ///
    /// Unlike [`ConcurrentCrackerColumn::select_with_policy`] this never
    /// takes the exclusive latch and never reorganizes: it is the answer
    /// path a saturated service prefers, where index refinement work is
    /// deferred until load drains.
    #[must_use]
    pub fn try_select_readonly(
        &self,
        lo: Value,
        hi: Value,
        materialize: bool,
    ) -> Option<SelectOutcome> {
        if let Some(shard) = self.sole_shard() {
            let guard = shard.inner.read();
            let range = guard.select_if_answerable(lo, hi)?;
            self.stats.shared_selects.fetch_add(1, Ordering::Relaxed);
            return Some(self.outcome_for(
                &guard,
                range,
                lo,
                hi,
                materialize,
                KernelDispatches::default(),
            ));
        }
        // Every shard must be answerable read-only, or the whole select
        // defers (no partial cracking on the degraded path).
        let shards = self.shard_handles();
        let mut parts: Vec<Option<ShardPart>> = Vec::with_capacity(shards.len());
        for sh in &shards {
            let guard = sh.inner.read();
            let range = guard.select_if_answerable(lo, hi)?;
            parts.push(Some(Self::part_for(&guard, range, lo, hi, materialize)));
        }
        Some(self.compose_select(parts, materialize))
    }

    /// Answers a whole batch of range selects `(lo, hi, materialize)` in a
    /// **single latch acquisition**, cracking every target piece around all
    /// of the batch's predicate bounds that land in it with one multi-pivot
    /// pass (see [`CrackerColumn::crack_select_batch`]).
    ///
    /// If every query in the batch is already resolved by the cracker index,
    /// the whole batch is answered under the shared latch; otherwise the
    /// exclusive latch is taken once for the batch — instead of once per
    /// query, which is what a loop over
    /// [`ConcurrentCrackerColumn::select_with_policy`] would pay.
    ///
    /// Per-query count/sum/materialization semantics are identical to the
    /// sequential path; the outcome carries one merged kernel-dispatch and
    /// piece-shape delta for the batch.
    pub fn select_batch_with_policy<R: Rng + ?Sized>(
        &self,
        queries: &[(Value, Value, bool)],
        policy: CrackPolicy,
        rng: &mut R,
    ) -> BatchSelectOutcome {
        if let Some(shard) = self.sole_shard() {
            return self.select_batch_single(&shard, queries, policy, rng);
        }
        self.select_batch_fanout(queries, policy, rng)
    }

    /// The single-shard (unsharded) batch path: one latch for the batch.
    fn select_batch_single<R: Rng + ?Sized>(
        &self,
        shard: &Shard,
        queries: &[(Value, Value, bool)],
        policy: CrackPolicy,
        rng: &mut R,
    ) -> BatchSelectOutcome {
        // Fast path: the entire batch is answerable under the shared latch
        // (bounds resolved, or binary-searchable in prefix-seeded sorted
        // pieces).
        {
            let guard = shard.inner.read();
            if let Some(outcome) = self.batch_outcome_if_resolved(&guard, queries) {
                self.stats
                    .shared_selects
                    .fetch_add(queries.len() as u64, Ordering::Relaxed);
                return outcome;
            }
        }
        let mut guard = shard.inner.write();
        // Re-check under the exclusive latch: a queued contender may have
        // resolved the same bounds already (see `select_with_policy`).
        if let Some(outcome) = self.batch_outcome_if_resolved(&guard, queries) {
            self.stats
                .shared_selects
                .fetch_add(queries.len() as u64, Ordering::Relaxed);
            return outcome;
        }
        let before = guard.kernel_dispatches();
        let bounds: Vec<(Value, Value)> = queries.iter().map(|&(lo, hi, _)| (lo, hi)).collect();
        let ranges = crack_select_batch_with_policy(&mut guard, &bounds, policy, rng);
        self.stats
            .exclusive_selects
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let dispatches = guard.kernel_dispatches().since(before);
        let piece_count = guard.piece_count();
        let avg_piece_len = guard.avg_piece_len();
        // Release the exclusive latch before the answer phase: the
        // per-query aggregates now compose from cached piece sums (pure
        // metadata), but materialized copies and scan fallbacks for
        // uncached pieces are still reads, and none of it needs exclusivity.
        // Dropping to the shared latch is safe because cracking only ever
        // *adds* boundaries — a refinement racing in between cannot move
        // values across the resolved boundaries these ranges end on, so
        // every range's count, sum and value multiset stay stable.
        drop(guard);
        let guard = shard.inner.read();
        let mut cache = AggregateCacheDelta::default();
        let answers = ranges
            .into_iter()
            .zip(queries)
            .map(|(range, &(lo, hi, materialize))| {
                Self::answer_for(&guard, range, lo, hi, materialize, &mut cache)
            })
            .collect();
        self.stats.record_cache(cache);
        BatchSelectOutcome {
            answers,
            piece_count,
            avg_piece_len,
            dispatches,
            cache,
        }
    }

    /// The multi-shard batch path: probe every shard for the whole batch,
    /// crack the pending shards around all of the batch's bounds (in
    /// parallel for a large cold batch), then compose each query's answer
    /// across shards and classify it against the cache exactly once.
    fn select_batch_fanout<R: Rng + ?Sized>(
        &self,
        queries: &[(Value, Value, bool)],
        policy: CrackPolicy,
        rng: &mut R,
    ) -> BatchSelectOutcome {
        let shards = self.shard_handles();
        let mut parts: Vec<Option<ShardBatchPart>> = Vec::new();
        parts.resize_with(shards.len(), || None);
        let mut pending: Vec<(usize, Arc<Shard>, u64)> = Vec::new();
        let mut pending_len = 0usize;
        for (i, sh) in shards.iter().enumerate() {
            let guard = sh.inner.read();
            match Self::batch_part_if_resolved(&guard, queries) {
                Some(part) => parts[i] = Some(part),
                None => {
                    pending_len += guard.len();
                    drop(guard);
                    pending.push((i, Arc::clone(sh), 0));
                }
            }
        }
        for p in &mut pending {
            p.2 = rng.next_u64();
        }
        let parallel = pending.len() > 1 && pending_len >= PARALLEL_FANOUT_MIN;
        let results = crack_pending(pending, parallel, |sh, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut guard = sh.inner.write();
            if let Some(part) = Self::batch_part_if_resolved(&guard, queries) {
                return part;
            }
            let before = guard.kernel_dispatches();
            let bounds: Vec<(Value, Value)> = queries.iter().map(|&(lo, hi, _)| (lo, hi)).collect();
            let ranges = crack_select_batch_with_policy(&mut guard, &bounds, policy, &mut rng);
            let dispatches = guard.kernel_dispatches().since(before);
            let answers = ranges
                .into_iter()
                .zip(queries)
                .map(|(range, &(lo, hi, materialize))| {
                    let agg = guard.aggregate_range(range.clone(), lo, hi);
                    (agg, materialize.then(|| guard.view(range).to_vec()))
                })
                .collect();
            ShardBatchPart {
                answers,
                piece_count: guard.piece_count(),
                len: guard.len(),
                dispatches,
                cracked: true,
            }
        });
        for (i, part) in results {
            parts[i] = Some(part);
        }
        // Compose each query across shards.
        let mut cache = AggregateCacheDelta::default();
        let mut dispatches = KernelDispatches::default();
        let (mut piece_count, mut total_len) = (0usize, 0usize);
        let mut cracked = false;
        let mut per_query: Vec<(RangeAggregate, Option<Vec<Value>>)> = queries
            .iter()
            .map(|&(_, _, m)| (RangeAggregate::default(), m.then(Vec::new)))
            .collect();
        for part in parts.into_iter().flatten() {
            dispatches.add(part.dispatches);
            piece_count += part.piece_count;
            total_len += part.len;
            cracked |= part.cracked;
            for (q, (agg, vs)) in part.answers.into_iter().enumerate() {
                add_aggregate(&mut per_query[q].0, &agg);
                if let (Some(out), Some(mut v)) = (per_query[q].1.as_mut(), vs) {
                    out.append(&mut v);
                }
            }
        }
        let answers = per_query
            .into_iter()
            .map(|(agg, values)| {
                cache.record(&agg);
                QueryAnswer {
                    count: agg.count,
                    sum: agg.sum,
                    values,
                }
            })
            .collect();
        self.stats.record_cache(cache);
        self.bump_select(cracked, queries.len() as u64);
        BatchSelectOutcome {
            answers,
            piece_count,
            avg_piece_len: if piece_count == 0 {
                0.0
            } else {
                total_len as f64 / piece_count as f64
            },
            dispatches,
            cache,
        }
    }

    /// One shard's whole-batch answers, if every query is answerable
    /// read-only on this shard (no cache classification — that happens on
    /// the composed per-query aggregates).
    fn batch_part_if_resolved(
        column: &CrackerColumn,
        queries: &[(Value, Value, bool)],
    ) -> Option<ShardBatchPart> {
        let ranges = queries
            .iter()
            .map(|&(lo, hi, _)| column.select_if_answerable(lo, hi))
            .collect::<Option<Vec<Range<usize>>>>()?;
        let answers = ranges
            .into_iter()
            .zip(queries)
            .map(|(range, &(lo, hi, materialize))| {
                let agg = column.aggregate_range(range.clone(), lo, hi);
                (agg, materialize.then(|| column.view(range).to_vec()))
            })
            .collect();
        Some(ShardBatchPart {
            answers,
            piece_count: column.piece_count(),
            len: column.len(),
            dispatches: KernelDispatches::default(),
            cracked: false,
        })
    }

    /// The batch outcome if every query is already answerable read-only
    /// (bounds resolved or binary-searchable in prefix-seeded sorted
    /// pieces).
    ///
    /// Answerability is checked for the *whole* batch (cheap boundary
    /// lookups) before any answer is computed, so a batch with one
    /// unresolved query does not scan the other queries' result ranges only
    /// to discard them.
    fn batch_outcome_if_resolved(
        &self,
        column: &CrackerColumn,
        queries: &[(Value, Value, bool)],
    ) -> Option<BatchSelectOutcome> {
        let ranges = queries
            .iter()
            .map(|&(lo, hi, _)| column.select_if_answerable(lo, hi))
            .collect::<Option<Vec<Range<usize>>>>()?;
        let mut cache = AggregateCacheDelta::default();
        let answers = ranges
            .into_iter()
            .zip(queries)
            .map(|(range, &(lo, hi, materialize))| {
                Self::answer_for(column, range, lo, hi, materialize, &mut cache)
            })
            .collect();
        self.stats.record_cache(cache);
        Some(BatchSelectOutcome {
            answers,
            piece_count: column.piece_count(),
            avg_piece_len: column.avg_piece_len(),
            dispatches: KernelDispatches::default(),
            cache,
        })
    }

    /// One query's answer over its resolved position range. The count is
    /// implicit in the range; the sum is composed from the per-piece
    /// aggregate cache ([`CrackerColumn::aggregate_range`]), which falls
    /// back to the storage layer's chunked masked-sum kernel only for
    /// pieces without a cached sum. A fully cached (or empty) range is
    /// answered with **zero** data-array reads; the classification is
    /// accumulated into `cache`.
    fn answer_for(
        column: &CrackerColumn,
        range: Range<usize>,
        lo: Value,
        hi: Value,
        materialize: bool,
        cache: &mut AggregateCacheDelta,
    ) -> QueryAnswer {
        let agg = column.aggregate_range(range.clone(), lo, hi);
        cache.record(&agg);
        QueryAnswer {
            count: agg.count,
            sum: agg.sum,
            values: materialize.then(|| column.view(range).to_vec()),
        }
    }

    fn outcome_for(
        &self,
        column: &CrackerColumn,
        range: Range<usize>,
        lo: Value,
        hi: Value,
        materialize: bool,
        dispatches: KernelDispatches,
    ) -> SelectOutcome {
        let mut cache = AggregateCacheDelta::default();
        let answer = Self::answer_for(column, range, lo, hi, materialize, &mut cache);
        self.stats.record_cache(cache);
        SelectOutcome {
            count: answer.count,
            sum: answer.sum,
            values: answer.values,
            piece_count: column.piece_count(),
            avg_piece_len: column.avg_piece_len(),
            dispatches,
            cache,
        }
    }

    /// Applies one auxiliary random refinement action under the exclusive
    /// latch of one (randomly chosen) shard, reporting the action's effect
    /// and dispatch delta.
    pub fn refine<R: Rng + ?Sized>(&self, rng: &mut R) -> RefineOutcome {
        if let Some(shard) = self.sole_shard() {
            let mut guard = shard.inner.write();
            let before = guard.kernel_dispatches();
            let split = guard.random_crack(rng);
            if split {
                self.stats.refinements.fetch_add(1, Ordering::Relaxed);
            }
            return RefineOutcome {
                split,
                piece_count: guard.piece_count(),
                avg_piece_len: guard.avg_piece_len(),
                dispatches: guard.kernel_dispatches().since(before),
            };
        }
        let shards = self.shard_handles();
        let idx = rng.gen_range(0..shards.len());
        let (split, dispatches) = {
            let mut guard = shards[idx].inner.write();
            let before = guard.kernel_dispatches();
            let split = guard.random_crack(rng);
            (split, guard.kernel_dispatches().since(before))
        };
        if split {
            self.stats.refinements.fetch_add(1, Ordering::Relaxed);
        }
        RefineOutcome {
            split,
            piece_count: self.piece_count(),
            avg_piece_len: self.avg_piece_len(),
            dispatches,
        }
    }

    /// Applies one auxiliary random refinement action under the exclusive
    /// latch. Returns `true` if the action introduced a new piece; only
    /// such effective actions are counted in [`LatchStats::refinements`].
    pub fn random_crack<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.refine(rng).split
    }

    /// Applies one auxiliary refinement action restricted to the value range
    /// `[lo, hi)` (hot-range boosting), reporting the action's effect and
    /// dispatch delta.
    pub fn refine_in_range<R: Rng + ?Sized>(
        &self,
        lo: Value,
        hi: Value,
        rng: &mut R,
    ) -> RefineOutcome {
        if let Some(shard) = self.sole_shard() {
            let mut guard = shard.inner.write();
            let before = guard.kernel_dispatches();
            let split = guard.random_crack_in_range(lo, hi, rng);
            if split {
                self.stats.refinements.fetch_add(1, Ordering::Relaxed);
            }
            return RefineOutcome {
                split,
                piece_count: guard.piece_count(),
                avg_piece_len: guard.avg_piece_len(),
                dispatches: guard.kernel_dispatches().since(before),
            };
        }
        // Every shard covers the full value domain (sharding is by row id),
        // so a hot value range is refined on a randomly chosen shard.
        let shards = self.shard_handles();
        let idx = rng.gen_range(0..shards.len());
        let (split, dispatches) = {
            let mut guard = shards[idx].inner.write();
            let before = guard.kernel_dispatches();
            let split = guard.random_crack_in_range(lo, hi, rng);
            (split, guard.kernel_dispatches().since(before))
        };
        if split {
            self.stats.refinements.fetch_add(1, Ordering::Relaxed);
        }
        RefineOutcome {
            split,
            piece_count: self.piece_count(),
            avg_piece_len: self.avg_piece_len(),
            dispatches,
        }
    }

    /// Applies `per_range` auxiliary refinement actions restricted to each
    /// of `ranges` under a **single** exclusive-latch acquisition — the
    /// batched form of [`ConcurrentCrackerColumn::refine_in_range`], used
    /// for hot-range boosting of a whole query batch (one latch round trip
    /// instead of one per boost per hot query).
    pub fn refine_in_ranges<R: Rng + ?Sized>(
        &self,
        ranges: &[(Value, Value)],
        per_range: u64,
        rng: &mut R,
    ) -> BatchRefineOutcome {
        if let Some(shard) = self.sole_shard() {
            let mut guard = shard.inner.write();
            let before = guard.kernel_dispatches();
            let mut splits = 0u64;
            for &(lo, hi) in ranges {
                for _ in 0..per_range {
                    if guard.random_crack_in_range(lo, hi, rng) {
                        splits += 1;
                    }
                }
            }
            if splits > 0 {
                self.stats.refinements.fetch_add(splits, Ordering::Relaxed);
            }
            return BatchRefineOutcome {
                splits,
                piece_count: guard.piece_count(),
                avg_piece_len: guard.avg_piece_len(),
                dispatches: guard.kernel_dispatches().since(before),
            };
        }
        // Draw each action's shard assignment up front (deterministic rng
        // order), then take each shard's latch once for its share of the
        // batch — one latch round trip per *shard*, not per action.
        let shards = self.shard_handles();
        let mut per_shard: Vec<Vec<(Value, Value)>> = vec![Vec::new(); shards.len()];
        for &(lo, hi) in ranges {
            for _ in 0..per_range {
                per_shard[rng.gen_range(0..shards.len())].push((lo, hi));
            }
        }
        let mut splits = 0u64;
        let mut dispatches = KernelDispatches::default();
        for (sh, actions) in shards.iter().zip(per_shard) {
            if actions.is_empty() {
                continue;
            }
            let mut guard = sh.inner.write();
            let before = guard.kernel_dispatches();
            for (lo, hi) in actions {
                if guard.random_crack_in_range(lo, hi, rng) {
                    splits += 1;
                }
            }
            dispatches.add(guard.kernel_dispatches().since(before));
        }
        if splits > 0 {
            self.stats.refinements.fetch_add(splits, Ordering::Relaxed);
        }
        BatchRefineOutcome {
            splits,
            piece_count: self.piece_count(),
            avg_piece_len: self.avg_piece_len(),
            dispatches,
        }
    }

    /// Applies one auxiliary refinement action restricted to the value range
    /// `[lo, hi)` (hot-range boosting). Returns `true` if a new piece was
    /// introduced.
    pub fn random_crack_in_range<R: Rng + ?Sized>(
        &self,
        lo: Value,
        hi: Value,
        rng: &mut R,
    ) -> bool {
        self.refine_in_range(lo, hi, rng).split
    }

    /// Builds prefix-sum arrays for every sorted piece that lacks one,
    /// under a single **write**-latch acquisition (build once, read many:
    /// once seeded, every reader serves interior sorted-piece aggregates
    /// from the shared arrays without ever taking the write latch again).
    /// Returns how many pieces were seeded.
    ///
    /// Probes under the *shared* latch first: the background tuner calls
    /// this on every idle batch, and a column with nothing to seed — the
    /// steady state, and the only state purely cracked columns ever have —
    /// must not acquire (or make queries queue behind) the exclusive latch.
    pub fn seed_prefix_sums(&self) -> usize {
        let mut seeded = 0;
        for sh in self.shard_handles() {
            let needs = sh.inner.read().needs_prefix_seeding();
            if needs {
                seeded += sh.inner.write().seed_prefix_sums();
            }
        }
        seeded
    }

    /// Fully sorts the column under the exclusive latch (see
    /// [`CrackerColumn::sort_fully`]): the piece table collapses to one
    /// sorted, prefix-seeded piece, after which every range aggregate is
    /// answered read-only under the shared latch.
    pub fn sort_fully(&self) {
        for sh in self.shard_handles() {
            let sorted = sh.inner.read().is_fully_sorted();
            if !sorted {
                sh.inner.write().sort_fully();
            }
        }
    }

    /// Ripple-inserts `v` (carrying `rowid` when the column keeps row ids)
    /// under the exclusive latch — the engine's durable-update path applies
    /// WAL-logged inserts through this.
    pub fn insert(&self, v: Value, rowid: holistic_storage::RowId) {
        if self.extent == UNSHARDED {
            if let Some(shard) = self.shards.read().first().map(Arc::clone) {
                shard.inner.write().ripple_insert(v, rowid);
            }
            return;
        }
        // Sharded: inserts land in the last shard; when it reaches the
        // extent a fresh empty shard is spilled (the only shard-list write).
        let mut list = self.shards.write();
        Self::spill_if_full(&mut list, self.extent);
        if let Some(target) = list.last().map(Arc::clone) {
            target.inner.write().ripple_insert(v, rowid);
        }
    }

    /// Spills a fresh empty shard (matching the last shard's kernel and
    /// row-id keeping) when the last shard has reached the extent.
    fn spill_if_full(list: &mut Vec<Arc<Shard>>, extent: usize) {
        let Some(last) = list.last().map(Arc::clone) else {
            return;
        };
        let (len, keeps_rowids, kernel) = {
            let g = last.inner.read();
            (g.len(), g.rowids().is_some(), g.kernel())
        };
        if len >= extent {
            let col = if keeps_rowids {
                CrackerColumn::from_values_with_rowid_offset(vec![], 0)
            } else {
                CrackerColumn::from_values(vec![])
            };
            list.push(Arc::new(Shard::new(col.with_kernel(kernel))));
        }
    }

    /// Batched ripple insert: on an unsharded column a single acquisition
    /// of the exclusive latch and one sweep over the piece table for the
    /// whole batch (see [`CrackerColumn::ripple_insert_batch`]); on a
    /// sharded column the batch is split into sub-batches honoring the last
    /// shard's remaining extent, spilling fresh shards as needed. The
    /// engine's WAL replay applies runs of insert records through this.
    pub fn insert_batch(&self, batch: &[(Value, holistic_storage::RowId)]) {
        if self.extent == UNSHARDED {
            if let Some(shard) = self.shards.read().first().map(Arc::clone) {
                shard.inner.write().ripple_insert_batch(batch);
            }
            return;
        }
        let mut list = self.shards.write();
        let mut rest = batch;
        while !rest.is_empty() {
            Self::spill_if_full(&mut list, self.extent);
            let Some(target) = list.last().map(Arc::clone) else {
                return;
            };
            let mut guard = target.inner.write();
            let room = self.extent.saturating_sub(guard.len()).max(1);
            let take = room.min(rest.len());
            guard.ripple_insert_batch(&rest[..take]);
            rest = &rest[take..];
        }
    }

    /// Ripple-deletes one occurrence of `v` under the exclusive latch of
    /// the first shard holding one, returning whether a value was removed.
    /// (Which copy of a duplicated value is removed is unspecified either
    /// way — the multiset answer is what matters.)
    pub fn delete(&self, v: Value) -> bool {
        for sh in self.shard_handles() {
            if sh.inner.write().ripple_delete(v) {
                return true;
            }
        }
        false
    }

    /// Runs a closure with shared access to the *first* shard's cracker
    /// column. On an unsharded column that is the whole column; sharded
    /// callers should use [`ConcurrentCrackerColumn::with_shard_read`] or
    /// [`ConcurrentCrackerColumn::pieces_snapshot`] instead.
    pub fn with_read<T>(&self, f: impl FnOnce(&CrackerColumn) -> T) -> T {
        let shard = Arc::clone(&self.shards.read()[0]);
        let guard = shard.inner.read();
        f(&guard)
    }

    /// Runs a closure with shared access to shard `shard`'s cracker column,
    /// or `None` when the index is out of range.
    pub fn with_shard_read<T>(
        &self,
        shard: usize,
        f: impl FnOnce(&CrackerColumn) -> T,
    ) -> Option<T> {
        let sh = { self.shards.read().get(shard).map(Arc::clone) };
        sh.map(|sh| {
            let guard = sh.inner.read();
            f(&guard)
        })
    }

    /// Shard `shard`'s piece table (shard-local offsets), or `None` when
    /// the index is out of range.
    #[must_use]
    pub fn shard_pieces(&self, shard: usize) -> Option<Vec<Piece>> {
        self.with_shard_read(shard, |c| c.pieces().to_vec())
    }

    /// Clones every shard's cracker column (one shard latch at a time) —
    /// the partial-rebuild path reuses the healthy shards' learned state.
    #[must_use]
    pub fn clone_shards(&self) -> Vec<CrackerColumn> {
        self.shard_handles()
            .iter()
            .map(|sh| sh.inner.read().clone())
            .collect()
    }

    /// A column-wide piece-table snapshot: every shard's pieces with their
    /// `start`/`end` rebased to column-global offsets (shard base = sum of
    /// preceding shard lengths), in shard order. On an unsharded column
    /// this is exactly the piece table.
    #[must_use]
    pub fn pieces_snapshot(&self) -> Vec<Piece> {
        let shards = self.shard_handles();
        if shards.len() == 1 {
            return shards[0].inner.read().pieces().to_vec();
        }
        let mut out = Vec::new();
        let mut base = 0usize;
        for sh in &shards {
            let guard = sh.inner.read();
            for p in guard.pieces() {
                let mut p = p.clone();
                p.start += base;
                p.end += base;
                out.push(p);
            }
            base += guard.len();
        }
        out
    }

    /// Validates every shard's cracker-column invariants.
    #[must_use]
    pub fn validate(&self) -> bool {
        self.find_invalid_shard().is_none()
    }

    /// Index of the first shard failing validation, or `None` when every
    /// shard is valid — the quarantine path uses this to pinpoint (and
    /// later rebuild) only the damaged shard.
    #[must_use]
    pub fn find_invalid_shard(&self) -> Option<usize> {
        self.shard_handles()
            .iter()
            .position(|sh| !sh.inner.read().validate())
    }

    /// One budgeted scrub step: validates up to `budget` pieces starting
    /// at piece index `from`, entirely under the shared latch (a scrub is
    /// a read; it must not make queries queue). Returns how far it got so
    /// the scrubber can resume where it left off next idle window.
    #[must_use]
    pub fn scrub_pieces(&self, from: usize, budget: usize) -> ScrubOutcome {
        // The scrub cursor walks a *global* piece index: the concatenation
        // of the shards' piece tables in shard order. Piece counts shift as
        // queries crack concurrently — the cursor is a progress heuristic,
        // not an exact bookmark, exactly as on the unsharded column.
        let shards = self.shard_handles();
        let want = budget.max(1);
        let (ws, we) = (from, from.saturating_add(want));
        let mut base = 0usize;
        let mut checked = 0usize;
        let mut valid = true;
        let mut failed_shard = None;
        for (i, sh) in shards.iter().enumerate() {
            let guard = sh.inner.read();
            let pc = guard.piece_count();
            let lo = ws.clamp(base, base + pc) - base;
            let hi = we.clamp(base, base + pc) - base;
            if lo < hi {
                if !guard.validate_piece_range(lo..hi) {
                    valid = false;
                    if failed_shard.is_none() {
                        failed_shard = Some(i);
                    }
                }
                checked += hi - lo;
            }
            base += pc;
        }
        let total = base;
        let end = we.min(total);
        ScrubOutcome {
            checked,
            next: (end < total).then_some(end),
            valid,
            failed_shard,
        }
    }

    /// Applies one injected corruption to the learned state, trying shards
    /// in order until one has a field to flip (see [`crate::corrupt`]).
    /// Returns whether a field was actually flipped.
    ///
    /// # Panics
    /// [`CorruptionKind::Panic`] propagates its panic out of the latch (the
    /// guard unwinds cleanly); the caller's containment boundary is
    /// expected to catch it.
    pub fn corrupt(&self, kind: CorruptionKind) -> bool {
        for sh in self.shard_handles() {
            if crate::corrupt::corrupt_column(&mut sh.inner.write(), kind) {
                return true;
            }
        }
        false
    }

    /// Applies one injected corruption to shard `shard` specifically,
    /// returning whether a field was flipped (`false` when the index is out
    /// of range or the shard has nothing to flip).
    ///
    /// # Panics
    /// [`CorruptionKind::Panic`] propagates, as with
    /// [`ConcurrentCrackerColumn::corrupt`].
    pub fn corrupt_shard(&self, shard: usize, kind: CorruptionKind) -> bool {
        let sh = { self.shards.read().get(shard).map(Arc::clone) };
        match sh {
            Some(sh) => crate::corrupt::corrupt_column(&mut sh.inner.write(), kind),
            None => false,
        }
    }
}

/// Runs the pending-shard crack closure over every pending shard: on the
/// calling thread when the work is small, or fanned out one-shard-per-worker
/// for a large cold crack. Worker threads start with an empty held-lock
/// stack, so each acquisition of a shard's `Column`-level latch is the
/// thread's deepest lock — the machine-checked order holds by construction,
/// and no thread ever holds two shard latches.
fn crack_pending<T, F>(
    pending: Vec<(usize, Arc<Shard>, u64)>,
    parallel: bool,
    f: F,
) -> Vec<(usize, T)>
where
    T: Send,
    F: Fn(&Shard, u64) -> T + Sync,
{
    let workers = if parallel {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(pending.len())
    } else {
        1
    };
    if workers < 2 {
        return pending
            .into_iter()
            .map(|(i, sh, seed)| (i, f(&sh, seed)))
            .collect();
    }
    let chunk = pending.len().div_ceil(workers);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = pending
            .chunks(chunk)
            .map(|slice| {
                s.spawn(move || {
                    slice
                        .iter()
                        .map(|(i, sh, seed)| (*i, f(sh, *seed)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| {
                // A worker panic (e.g. injected kernel-bug corruption) must
                // propagate to the caller's containment boundary, exactly
                // like the same panic on the sequential path would.
                h.join().expect("shard crack worker panicked") // lint:allow(panic-path)
            })
            .collect()
    })
}

/// Component-wise accumulation of per-shard range aggregates. Summing the
/// piece-class counters (cached/prefix/scanned) before classifying the
/// composed aggregate once is exactly what makes the sharded cache
/// classification match the unsharded column's.
fn add_aggregate(into: &mut RangeAggregate, from: &RangeAggregate) {
    into.count += from.count;
    into.sum += from.sum;
    into.cached_pieces += from.cached_pieces;
    into.prefix_pieces += from.prefix_pieces;
    into.scanned_pieces += from.scanned_pieces;
    into.scanned_values += from.scanned_values;
}

/// Outcome of one [`ConcurrentCrackerColumn::scrub_pieces`] step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// Pieces validated by this step.
    pub checked: usize,
    /// Piece index to resume from, or `None` when the step reached the
    /// end of the (global) piece table (the scrub cycle for this column is
    /// done).
    pub next: Option<usize>,
    /// Whether every checked piece passed validation.
    pub valid: bool,
    /// The first shard whose checked pieces failed validation, when
    /// `!valid` — quarantine uses this to pinpoint the damaged shard.
    pub failed_shard: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn data(n: usize) -> Vec<Value> {
        (0..n as Value).map(|i| (i * 7919) % (n as Value)).collect()
    }

    fn scan_count(values: &[Value], lo: Value, hi: Value) -> u64 {
        values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
    }

    #[test]
    fn single_threaded_counts_match_scan() {
        let values = data(1000);
        let c = ConcurrentCrackerColumn::from_values(values.clone());
        for &(lo, hi) in &[(0, 100), (100, 350), (900, 1000), (500, 400)] {
            assert_eq!(c.count(lo, hi), scan_count(&values, lo, hi));
        }
        assert!(c.validate());
        assert!(c.latch_stats().exclusive_selects >= 3);
    }

    #[test]
    fn repeated_query_uses_shared_path() {
        let values = data(1000);
        let c = ConcurrentCrackerColumn::from_values(values);
        let _ = c.count(100, 200);
        let exclusive_before = c.latch_stats().exclusive_selects;
        let _ = c.count(100, 200);
        let stats = c.latch_stats();
        assert_eq!(stats.exclusive_selects, exclusive_before);
        assert!(stats.shared_selects >= 1);
    }

    #[test]
    fn materialize_returns_only_qualifying_values() {
        let values = data(500);
        let c = ConcurrentCrackerColumn::from_values(values.clone());
        let got = c.materialize(50, 150);
        assert_eq!(got.len() as u64, scan_count(&values, 50, 150));
        assert!(got.iter().all(|&v| (50..150).contains(&v)));
        // Second call takes the shared path and returns the same multiset.
        let mut again = c.materialize(50, 150);
        let mut first = got.clone();
        again.sort_unstable();
        first.sort_unstable();
        assert_eq!(again, first);
    }

    #[test]
    fn select_with_policy_matches_scan_and_reports_dispatches() {
        let values = data(2000);
        let c = ConcurrentCrackerColumn::from_values(values.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let first = c.select_with_policy(100, 400, true, CrackPolicy::Standard, &mut rng);
        assert_eq!(first.count, scan_count(&values, 100, 400));
        let expected_sum: i128 = values
            .iter()
            .filter(|&&v| (100..400).contains(&v))
            .map(|&v| i128::from(v))
            .sum();
        assert_eq!(first.sum, expected_sum);
        assert_eq!(first.values.as_ref().unwrap().len() as u64, first.count);
        assert!(first.dispatches.total() >= 1, "first select must crack");
        assert!(first.piece_count >= 2);
        // Second identical select runs on the shared path: no dispatches.
        let again = c.select_with_policy(100, 400, false, CrackPolicy::Standard, &mut rng);
        assert_eq!(again.count, first.count);
        assert_eq!(again.sum, first.sum);
        assert_eq!(again.dispatches.total(), 0);
        assert!(again.values.is_none());
        assert!(c.latch_stats().shared_selects >= 1);
        assert!(c.validate());
    }

    #[test]
    fn stochastic_policies_stay_correct_through_the_latch() {
        let values = data(4000);
        for policy in [CrackPolicy::ddr(), CrackPolicy::ddc(), CrackPolicy::Mdd1r] {
            let c = ConcurrentCrackerColumn::from_values(values.clone());
            let mut rng = StdRng::seed_from_u64(13);
            for &(lo, hi) in &[(10, 500), (1000, 1400), (3000, 3900), (500, 400)] {
                let outcome = c.select_with_policy(lo, hi, false, policy, &mut rng);
                assert_eq!(
                    outcome.count,
                    scan_count(&values, lo, hi),
                    "{policy:?} [{lo},{hi})"
                );
            }
            assert!(c.validate());
        }
    }

    #[test]
    fn concurrent_queries_and_refinements_are_correct() {
        let n = 20_000;
        let values = data(n);
        let expected: Vec<(Value, Value, u64)> = (0..16)
            .map(|i| {
                let lo = (i * 1000) % (n as Value);
                let hi = lo + 500;
                (lo, hi, scan_count(&values, lo, hi))
            })
            .collect();
        let column = Arc::new(ConcurrentCrackerColumn::from_values(values));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let column = Arc::clone(&column);
            let expected = expected.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                let mut effective = 0u64;
                for round in 0..8 {
                    for &(lo, hi, want) in &expected {
                        assert_eq!(column.count(lo, hi), want, "thread {t} round {round}");
                    }
                    // Interleave idle-time style refinements.
                    for _ in 0..5 {
                        if column.random_crack(&mut rng) {
                            effective += 1;
                        }
                    }
                }
                effective
            }));
        }
        let mut total_effective = 0;
        for h in handles {
            total_effective += h.join().expect("worker panicked");
        }
        assert!(column.validate());
        assert!(column.piece_count() > 16);
        let stats = column.latch_stats();
        // Only actions that introduced a piece count as refinement work.
        assert_eq!(stats.refinements, total_effective);
        assert!(stats.refinements <= 4 * 8 * 5);
        assert!(
            stats.shared_selects > 0,
            "expected some shared-path selects"
        );
    }

    #[test]
    fn noop_refinements_are_not_counted_as_work() {
        // Regression: the old code bumped `refinements` before checking
        // whether the crack did anything, so an empty column racked up
        // refinement counts without ever doing work.
        let empty = ConcurrentCrackerColumn::from_values(vec![]);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert!(!empty.random_crack(&mut rng));
        }
        assert_eq!(empty.latch_stats().refinements, 0);

        // A column of identical values converges after a single split; the
        // remaining actions are no-ops and must not be counted either.
        let converged = ConcurrentCrackerColumn::from_values(vec![5; 64]);
        let mut effective = 0;
        for _ in 0..20 {
            if converged.random_crack(&mut rng) {
                effective += 1;
            }
        }
        assert!(effective <= 1);
        assert_eq!(converged.latch_stats().refinements, effective);

        // Same contract for the hot-range variant.
        assert!(!converged.random_crack_in_range(5, 5, &mut rng));
        assert_eq!(converged.latch_stats().refinements, effective);
    }

    #[test]
    fn batch_select_matches_scan_and_takes_one_exclusive_pass() {
        let values = data(4000);
        let c = ConcurrentCrackerColumn::from_values(values.clone());
        let queries: Vec<(Value, Value, bool)> = vec![
            (100, 400, false),
            (1000, 1200, true),
            (3500, 3900, false),
            (500, 400, false),
        ];
        let mut rng = StdRng::seed_from_u64(21);
        let outcome = c.select_batch_with_policy(&queries, CrackPolicy::Standard, &mut rng);
        assert_eq!(outcome.answers.len(), queries.len());
        for (a, &(lo, hi, materialize)) in outcome.answers.iter().zip(&queries) {
            assert_eq!(a.count, scan_count(&values, lo, hi), "[{lo},{hi})");
            let expected_sum: i128 = values
                .iter()
                .filter(|&&v| v >= lo && v < hi)
                .map(|&v| i128::from(v))
                .sum();
            assert_eq!(a.sum, expected_sum, "[{lo},{hi})");
            assert_eq!(a.values.is_some(), materialize);
            if let Some(vs) = &a.values {
                assert_eq!(vs.len() as u64, a.count);
            }
        }
        assert!(outcome.dispatches.total() >= 1, "cold batch must crack");
        assert!(outcome.piece_count >= 2);
        assert_eq!(c.latch_stats().exclusive_selects, queries.len() as u64);
        assert!(c.validate());

        // The identical batch now runs entirely on the shared path.
        let again = c.select_batch_with_policy(&queries, CrackPolicy::Standard, &mut rng);
        assert_eq!(again.dispatches.total(), 0);
        assert_eq!(c.latch_stats().shared_selects, queries.len() as u64);
        for (a, b) in again.answers.iter().zip(&outcome.answers) {
            assert_eq!(a.count, b.count);
            assert_eq!(a.sum, b.sum);
        }
    }

    #[test]
    fn batch_select_stochastic_policies_stay_correct() {
        let values = data(4000);
        for policy in [CrackPolicy::ddr(), CrackPolicy::ddc(), CrackPolicy::Mdd1r] {
            let c = ConcurrentCrackerColumn::from_values(values.clone());
            let mut rng = StdRng::seed_from_u64(31);
            let queries: Vec<(Value, Value, bool)> = vec![
                (10, 500, false),
                (1000, 1400, false),
                (3000, 3900, false),
                (500, 400, false),
            ];
            let outcome = c.select_batch_with_policy(&queries, policy, &mut rng);
            for (a, &(lo, hi, _)) in outcome.answers.iter().zip(&queries) {
                assert_eq!(
                    a.count,
                    scan_count(&values, lo, hi),
                    "{policy:?} [{lo},{hi})"
                );
            }
            assert!(c.validate(), "{policy:?}");
        }
    }

    #[test]
    fn batch_select_empty_batch_and_empty_column() {
        let c = ConcurrentCrackerColumn::from_values(data(100));
        let mut rng = StdRng::seed_from_u64(0);
        let outcome = c.select_batch_with_policy(&[], CrackPolicy::Standard, &mut rng);
        assert!(outcome.answers.is_empty());
        assert_eq!(outcome.dispatches.total(), 0);
        let empty = ConcurrentCrackerColumn::from_values(vec![]);
        let outcome =
            empty.select_batch_with_policy(&[(1, 5, false)], CrackPolicy::Mdd1r, &mut rng);
        assert_eq!(outcome.answers[0].count, 0);
    }

    #[test]
    fn resolved_aggregates_are_served_without_data_reads() {
        let values = data(4000);
        let c = ConcurrentCrackerColumn::from_values(values.clone());
        let mut rng = StdRng::seed_from_u64(17);
        // First select cracks — the fused kernels seed the cache, so even
        // the cracking select answers its aggregate from piece sums.
        let first = c.select_with_policy(100, 900, false, CrackPolicy::Standard, &mut rng);
        assert_eq!(first.cache.hits, 1);
        assert_eq!(first.cache.scanned_values, 0);
        // The repeated (resolved, shared-latch) select: zero data reads.
        let again = c.select_with_policy(100, 900, false, CrackPolicy::Standard, &mut rng);
        assert_eq!(again.count, first.count);
        assert_eq!(again.sum, first.sum);
        assert_eq!(again.cache.hits, 1);
        assert_eq!(
            again.cache.scanned_values, 0,
            "resolved path must not touch data"
        );
        let stats = c.latch_stats();
        assert_eq!(stats.aggregate_hits, 2);
        assert_eq!(stats.aggregate_partials + stats.aggregate_misses, 0);
    }

    #[test]
    fn batch_aggregates_compose_from_the_cache() {
        let values = data(4000);
        let c = ConcurrentCrackerColumn::from_values(values.clone());
        let queries: Vec<(Value, Value, bool)> =
            vec![(100, 400, false), (1000, 1200, false), (3500, 3900, false)];
        let mut rng = StdRng::seed_from_u64(19);
        let outcome = c.select_batch_with_policy(&queries, CrackPolicy::Standard, &mut rng);
        assert_eq!(outcome.cache.hits, queries.len() as u64);
        assert_eq!(outcome.cache.scanned_values, 0);
        for (a, &(lo, hi, _)) in outcome.answers.iter().zip(&queries) {
            let expected: i128 = values
                .iter()
                .filter(|&&v| v >= lo && v < hi)
                .map(|&v| i128::from(v))
                .sum();
            assert_eq!(a.sum, expected, "[{lo},{hi})");
        }
        // The resolved replay stays metadata-only too.
        let again = c.select_batch_with_policy(&queries, CrackPolicy::Standard, &mut rng);
        assert_eq!(again.cache.hits, queries.len() as u64);
        assert_eq!(again.cache.scanned_values, 0);
        assert_eq!(c.latch_stats().aggregate_hits, 2 * queries.len() as u64);
    }

    #[test]
    fn sorted_prefix_aggregates_stay_on_the_shared_latch() {
        // A sorted, prefix-seeded column answers *arbitrary* interior
        // aggregates read-only: no write latch, no splits, zero data reads,
        // classified as prefix hits.
        let mut inner = CrackerColumn::from_values(data(4000));
        inner.sort_fully();
        let c = ConcurrentCrackerColumn::new(inner);
        let mut rng = StdRng::seed_from_u64(23);
        let pieces_before = c.piece_count();
        for &(lo, hi) in &[(100, 900), (0, 4000), (3999, 4001), (250, 251)] {
            let out = c.select_with_policy(lo, hi, false, CrackPolicy::Standard, &mut rng);
            assert_eq!(out.count, scan_count(&data(4000), lo, hi), "[{lo},{hi})");
            let expected: i128 = data(4000)
                .iter()
                .filter(|&&v| v >= lo && v < hi)
                .map(|&v| i128::from(v))
                .sum();
            assert_eq!(out.sum, expected, "[{lo},{hi})");
            assert_eq!(out.cache.scanned_values, 0, "[{lo},{hi})");
            assert_eq!(out.cache.zero_read(), 1, "[{lo},{hi})");
            assert_eq!(out.dispatches.total(), 0);
        }
        assert_eq!(c.piece_count(), pieces_before, "no fragmentation");
        let stats = c.latch_stats();
        assert_eq!(stats.exclusive_selects, 0, "never took the write latch");
        assert_eq!(stats.shared_selects, 4);
        assert!(
            stats.aggregate_prefix >= 3,
            "interior bounds are prefix hits"
        );
        assert_eq!(stats.aggregate_partials + stats.aggregate_misses, 0);
        // The batched path shares the same read-only fast path.
        let queries: Vec<(Value, Value, bool)> = vec![(5, 77, false), (1000, 3500, true)];
        let outcome = c.select_batch_with_policy(&queries, CrackPolicy::Standard, &mut rng);
        assert_eq!(outcome.dispatches.total(), 0);
        assert_eq!(outcome.cache.scanned_values, 0);
        assert_eq!(outcome.cache.zero_read(), 2);
        assert_eq!(c.latch_stats().exclusive_selects, 0);
        assert!(c.validate());
    }

    #[test]
    fn seed_prefix_sums_unlocks_the_read_only_sorted_path() {
        // A sorted column handed over *without* prefixes cracks on first
        // touch; after seeding (one write-latch pass), the same shape of
        // query runs read-only.
        let mut inner = CrackerColumn::from_values(data(1000));
        inner.sort_fully();
        // Strip what sort_fully seeded to model a pre-seeding column.
        {
            let (_, _, index) = inner.parts_mut();
            for p in index.pieces_mut() {
                p.sum = None;
                p.prefix = None;
            }
        }
        let c = ConcurrentCrackerColumn::new(inner);
        assert_eq!(c.seed_prefix_sums(), 1);
        assert_eq!(c.seed_prefix_sums(), 0, "second seeding is a no-op");
        let mut rng = StdRng::seed_from_u64(29);
        let out = c.select_with_policy(100, 300, false, CrackPolicy::Standard, &mut rng);
        assert_eq!(out.count, scan_count(&data(1000), 100, 300));
        assert_eq!(out.cache.scanned_values, 0);
        assert_eq!(c.latch_stats().exclusive_selects, 0);
    }

    #[test]
    fn empty_column() {
        let c = ConcurrentCrackerColumn::from_values(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.count(0, 10), 0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(!c.random_crack(&mut rng));
    }

    #[test]
    fn refine_reports_effect_and_shape() {
        let c = ConcurrentCrackerColumn::from_values((0..1000).rev().collect());
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = c.refine(&mut rng);
        assert!(outcome.split);
        assert!(outcome.piece_count >= 2);
        assert!(outcome.avg_piece_len <= 1000.0);
        assert_eq!(c.latch_stats().refinements, 1);
        assert!(c.cracks_performed() >= 1);
    }

    #[test]
    fn with_read_exposes_column_state() {
        let c = ConcurrentCrackerColumn::from_values(data(100));
        let _ = c.count(10, 20);
        let pieces = c.with_read(|col| col.piece_count());
        assert!(pieces >= 2);
    }

    fn scan_sum(values: &[Value], lo: Value, hi: Value) -> i128 {
        values
            .iter()
            .filter(|&&v| v >= lo && v < hi)
            .map(|&v| i128::from(v))
            .sum()
    }

    #[test]
    fn sharded_answers_match_the_unsharded_reference() {
        let values = data(4000);
        for extent in [1, 7, 512, 1000, 4000, 9999] {
            let sharded = ConcurrentCrackerColumn::from_values_sharded(values.clone(), extent);
            let reference = ConcurrentCrackerColumn::from_values(values.clone());
            let mut rs = StdRng::seed_from_u64(41);
            let mut ru = StdRng::seed_from_u64(41);
            for &(lo, hi) in &[(0, 100), (100, 350), (3900, 4000), (500, 400), (0, 4000)] {
                let a = sharded.select_with_policy(lo, hi, true, CrackPolicy::Standard, &mut rs);
                let b = reference.select_with_policy(lo, hi, true, CrackPolicy::Standard, &mut ru);
                assert_eq!(a.count, b.count, "extent {extent} [{lo},{hi})");
                assert_eq!(a.sum, b.sum, "extent {extent} [{lo},{hi})");
                let mut av = a.values.clone().unwrap();
                let mut bv = b.values.clone().unwrap();
                av.sort_unstable();
                bv.sort_unstable();
                assert_eq!(av, bv, "extent {extent} [{lo},{hi})");
            }
            assert!(sharded.validate(), "extent {extent}");
            assert_eq!(sharded.len(), values.len());
            assert_eq!(sharded.shard_count(), values.len().div_ceil(extent).max(1));
        }
    }

    #[test]
    fn sharded_sorted_prefix_classification_matches_unsharded() {
        // Sorted + prefix-seeded shards: composed aggregates must classify
        // exactly like the unsharded column (zero-read prefix hits), and
        // never take a write latch.
        let values = data(4000);
        let c = ConcurrentCrackerColumn::from_values_sharded(values.clone(), 600);
        c.sort_fully();
        assert_eq!(c.seed_prefix_sums(), 0, "sort_fully seeds the prefixes");
        let mut rng = StdRng::seed_from_u64(23);
        for &(lo, hi) in &[(100, 900), (0, 4000), (250, 251), (3999, 4001)] {
            let out = c.select_with_policy(lo, hi, false, CrackPolicy::Standard, &mut rng);
            assert_eq!(out.count, scan_count(&values, lo, hi), "[{lo},{hi})");
            assert_eq!(out.sum, scan_sum(&values, lo, hi), "[{lo},{hi})");
            assert_eq!(out.cache.scanned_values, 0, "[{lo},{hi})");
            assert_eq!(out.cache.zero_read(), 1, "[{lo},{hi})");
            assert_eq!(out.dispatches.total(), 0);
        }
        let stats = c.latch_stats();
        assert_eq!(stats.exclusive_selects, 0, "never took a write latch");
        assert_eq!(stats.shared_selects, 4);
        assert_eq!(stats.aggregate_partials + stats.aggregate_misses, 0);
    }

    #[test]
    fn sharded_batch_matches_scan_and_composes_the_cache() {
        let values = data(4000);
        let c = ConcurrentCrackerColumn::from_values_sharded(values.clone(), 700);
        let queries: Vec<(Value, Value, bool)> = vec![
            (100, 400, false),
            (1000, 1200, true),
            (3500, 3900, false),
            (500, 400, false),
        ];
        let mut rng = StdRng::seed_from_u64(21);
        let outcome = c.select_batch_with_policy(&queries, CrackPolicy::Standard, &mut rng);
        for (a, &(lo, hi, materialize)) in outcome.answers.iter().zip(&queries) {
            assert_eq!(a.count, scan_count(&values, lo, hi), "[{lo},{hi})");
            assert_eq!(a.sum, scan_sum(&values, lo, hi), "[{lo},{hi})");
            assert_eq!(a.values.is_some(), materialize);
        }
        assert_eq!(c.latch_stats().exclusive_selects, queries.len() as u64);
        assert!(c.validate());
        // The resolved replay is zero-read per query, like the unsharded path.
        let again = c.select_batch_with_policy(&queries, CrackPolicy::Standard, &mut rng);
        assert_eq!(again.dispatches.total(), 0);
        assert_eq!(again.cache.scanned_values, 0);
        assert_eq!(again.cache.zero_read(), queries.len() as u64);
        assert_eq!(c.latch_stats().shared_selects, queries.len() as u64);
    }

    #[test]
    fn sharded_inserts_spill_and_deletes_find_their_shard() {
        let c = ConcurrentCrackerColumn::from_values_sharded((0..10).collect(), 4);
        assert_eq!(c.shard_count(), 3);
        assert_eq!(c.shard_extent(), Some(4));
        // Last shard holds 2 values; two inserts fill it, the third spills.
        c.insert(100, 0);
        c.insert(101, 0);
        assert_eq!(c.shard_count(), 3);
        c.insert(102, 0);
        assert_eq!(c.shard_count(), 4);
        assert_eq!(c.len(), 13);
        assert_eq!(c.count(100, 103), 3);
        // Batch insert spills as many shards as it needs.
        let batch: Vec<(Value, holistic_storage::RowId)> = (200..212).map(|v| (v, 0)).collect();
        c.insert_batch(&batch);
        assert_eq!(c.len(), 25);
        assert_eq!(c.count(200, 212), 12);
        assert!(c.shard_count() >= 6);
        // Deletes remove exactly one occurrence, wherever it lives.
        assert!(c.delete(5));
        assert!(!c.delete(5));
        assert!(c.delete(207));
        assert_eq!(c.len(), 23);
        assert!(c.validate());
    }

    #[test]
    fn sharded_scrub_walks_every_shard_and_pinpoints_damage() {
        let values = data(3000);
        let c = ConcurrentCrackerColumn::from_values_sharded(values, 500);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let _ = c.refine(&mut rng);
        }
        let total = c.piece_count();
        // Walk the global cursor to the end; every piece gets checked once.
        let mut checked = 0;
        let mut cursor = Some(0usize);
        while let Some(from) = cursor {
            let out = c.scrub_pieces(from, 3);
            assert!(out.valid);
            assert_eq!(out.failed_shard, None);
            checked += out.checked;
            cursor = out.next;
        }
        assert_eq!(checked, total);
        // Damage one specific shard: the scrub names it.
        assert!(c.corrupt_shard(3, CorruptionKind::BoundaryFlip));
        let out = c.scrub_pieces(0, usize::MAX - 1);
        assert!(!out.valid);
        assert_eq!(out.failed_shard, Some(3));
        assert_eq!(c.find_invalid_shard(), Some(3));
        // Every other shard still validates.
        for s in 0..c.shard_count() {
            let ok = c.with_shard_read(s, |col| col.validate()).unwrap();
            assert_eq!(ok, s != 3, "shard {s}");
        }
    }

    #[test]
    fn pieces_snapshot_rebases_shard_offsets() {
        let values = data(1000);
        let c = ConcurrentCrackerColumn::from_values_sharded(values, 300);
        let _ = c.count(100, 500);
        let snapshot = c.pieces_snapshot();
        assert_eq!(snapshot.len(), c.piece_count());
        // Global contiguity: pieces tile [0, len) in order.
        let mut expect_start = 0usize;
        for p in &snapshot {
            assert_eq!(p.start, expect_start);
            expect_start = p.end;
        }
        assert_eq!(expect_start, c.len());
    }

    #[test]
    fn sharded_try_select_readonly_defers_until_answerable() {
        let values = data(2000);
        let c = ConcurrentCrackerColumn::from_values_sharded(values.clone(), 450);
        assert!(c.try_select_readonly(100, 200, false).is_none());
        assert_eq!(c.latch_stats().shared_selects, 0);
        let _ = c.count(100, 200);
        let out = c.try_select_readonly(100, 200, true).expect("resolved");
        assert_eq!(out.count, scan_count(&values, 100, 200));
        assert_eq!(out.sum, scan_sum(&values, 100, 200));
        assert!(c.validate());
    }

    #[test]
    fn parallel_cold_crack_matches_scan() {
        // Large enough that the fan-out takes the threaded path on a
        // multi-core box (and the sequential fallback elsewhere) — the
        // answers must be identical either way.
        let n = 200_000;
        let values = data(n);
        let c = ConcurrentCrackerColumn::from_values_sharded(values.clone(), 25_000);
        assert_eq!(c.shard_count(), 8);
        let mut rng = StdRng::seed_from_u64(3);
        let out = c.select_with_policy(1000, 150_000, false, CrackPolicy::Standard, &mut rng);
        assert_eq!(out.count, scan_count(&values, 1000, 150_000));
        assert_eq!(out.sum, scan_sum(&values, 1000, 150_000));
        assert!(c.validate());
        assert_eq!(c.latch_stats().exclusive_selects, 1);
    }

    #[test]
    fn clone_shards_and_from_shards_round_trip() {
        let values = data(1200);
        let c = ConcurrentCrackerColumn::from_values_sharded(values.clone(), 400);
        let _ = c.count(100, 700);
        let rebuilt = ConcurrentCrackerColumn::from_shards(c.clone_shards(), 400);
        assert_eq!(rebuilt.shard_count(), c.shard_count());
        assert_eq!(rebuilt.len(), c.len());
        assert_eq!(rebuilt.pieces_snapshot(), c.pieces_snapshot());
        assert_eq!(rebuilt.count(100, 700), scan_count(&values, 100, 700));
        assert!(rebuilt.validate());
    }

    #[test]
    fn concurrent_writers_crack_disjoint_shards() {
        // N writer threads, each refining its own shard through the public
        // API while readers fan out across all shards: answers stay exact.
        let n = 40_000;
        let values = data(n);
        let c = Arc::new(ConcurrentCrackerColumn::from_values_sharded(
            values.clone(),
            10_000,
        ));
        let expected: Vec<(Value, Value, u64)> = (0..8)
            .map(|i| {
                let lo = (i * 4000) % (n as Value);
                let hi = lo + 1500;
                (lo, hi, scan_count(&values, lo, hi))
            })
            .collect();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = Arc::clone(&c);
                let expected = expected.clone();
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t);
                    for _ in 0..6 {
                        for &(lo, hi, want) in &expected {
                            assert_eq!(c.count(lo, hi), want);
                        }
                        for _ in 0..4 {
                            let _ = c.refine(&mut rng);
                        }
                    }
                });
            }
        });
        assert!(c.validate());
        assert_eq!(c.shard_count(), 4);
    }
}
