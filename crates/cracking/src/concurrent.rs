//! Concurrency control for adaptive indexing.
//!
//! Cracking turns read-only selects into structural modifications, so some
//! form of concurrency control is needed even for read-only workloads
//! (Graefe, Halim, Idreos, Kuno, Manegold — PVLDB 2012). The scheme here is
//! the pragmatic one used in practice: a per-column reader/writer latch.
//! A select whose bounds are already *answerable* — resolved by the cracker
//! index, or binary-searchable inside a sorted piece carrying a prefix-sum
//! array — is a pure read and only takes the shared latch; a select that
//! has to crack (or an idle-time refinement action, or a prefix-sum build)
//! takes the exclusive latch for the duration of the pass. Because cracking
//! touches exactly one column, queries on different columns never contend.
//!
//! The latch-usage counters are plain atomics: the shared select path is
//! exactly the path the latch exists to parallelize, so it must not
//! serialize on a statistics lock.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use holistic_sync::{LockLevel, OrderedRwLock};
use rand::Rng;

use holistic_storage::Column;

use crate::cracker::CrackerColumn;
use crate::kernels::KernelDispatches;
use crate::stochastic::{crack_select_batch_with_policy, crack_select_with_policy, CrackPolicy};
use crate::Value;

/// Counters describing how often the fast (shared) path could be used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatchStats {
    /// Selects answered under the shared latch (no cracking needed).
    pub shared_selects: u64,
    /// Selects that had to take the exclusive latch to crack.
    pub exclusive_selects: u64,
    /// *Effective* auxiliary refinement actions (always exclusive). An
    /// action that did not introduce a new piece — empty column, converged
    /// column, pivot already a boundary — is not work and is not counted.
    pub refinements: u64,
    /// Count/sum answers composed entirely from cached piece sums (zero
    /// data-array reads for the aggregate).
    pub aggregate_hits: u64,
    /// Count/sum answers that needed at least one prefix-sum difference —
    /// bounds landing *inside* a sorted piece — and still read no data.
    pub aggregate_prefix: u64,
    /// Count/sum answers that mixed cached piece sums with scanned pieces.
    pub aggregate_partials: u64,
    /// Count/sum answers with no cached piece sum available at all.
    pub aggregate_misses: u64,
}

/// How a batch of count/sum answers was produced by the per-piece aggregate
/// cache. One query counts as a *hit* when its sum was composed purely from
/// cached whole-piece sums (or its range was empty), a *prefix* hit when it
/// needed at least one prefix-sum difference — bounds inside a sorted piece
/// — while still reading no data, a *partial* when cached sums or prefix
/// differences covered some pieces but others had to be scanned, and a
/// *miss* when no piece of the range carried any cache. `scanned_values`
/// totals the data-array reads the scan fallback performed — 0 means the
/// whole batch's aggregates were answered from metadata alone.
/// Materialization reads are not counted: the cache can only ever serve
/// aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregateCacheDelta {
    /// Queries answered entirely from cached whole-piece sums.
    pub hits: u64,
    /// Queries answered zero-read via at least one prefix-sum difference.
    pub prefix: u64,
    /// Queries answered from a mix of cached/prefix pieces and scans.
    pub partials: u64,
    /// Queries answered without any cached sum or prefix.
    pub misses: u64,
    /// Data values read by the aggregate scan fallback.
    pub scanned_values: u64,
}

impl AggregateCacheDelta {
    /// Classifies one composed range aggregate into the delta.
    fn record(&mut self, agg: &crate::cracker::RangeAggregate) {
        if agg.scanned_pieces == 0 {
            if agg.prefix_pieces > 0 {
                self.prefix += 1;
            } else {
                self.hits += 1;
            }
        } else if agg.cached_pieces > 0 || agg.prefix_pieces > 0 {
            self.partials += 1;
        } else {
            self.misses += 1;
        }
        self.scanned_values += agg.scanned_values;
    }

    /// Queries answered without a single data-array read (whole-piece hits
    /// plus prefix hits).
    #[must_use]
    pub fn zero_read(&self) -> u64 {
        self.hits + self.prefix
    }

    /// Component-wise accumulation.
    pub fn add(&mut self, other: AggregateCacheDelta) {
        self.hits += other.hits;
        self.prefix += other.prefix;
        self.partials += other.partials;
        self.misses += other.misses;
        self.scanned_values += other.scanned_values;
    }
}

/// Lock-free storage behind [`LatchStats`].
#[derive(Debug, Default)]
struct AtomicLatchStats {
    shared_selects: AtomicU64,
    exclusive_selects: AtomicU64,
    refinements: AtomicU64,
    aggregate_hits: AtomicU64,
    aggregate_prefix: AtomicU64,
    aggregate_partials: AtomicU64,
    aggregate_misses: AtomicU64,
}

impl AtomicLatchStats {
    fn snapshot(&self) -> LatchStats {
        LatchStats {
            shared_selects: self.shared_selects.load(Ordering::Relaxed),
            exclusive_selects: self.exclusive_selects.load(Ordering::Relaxed),
            refinements: self.refinements.load(Ordering::Relaxed),
            aggregate_hits: self.aggregate_hits.load(Ordering::Relaxed),
            aggregate_prefix: self.aggregate_prefix.load(Ordering::Relaxed),
            aggregate_partials: self.aggregate_partials.load(Ordering::Relaxed),
            aggregate_misses: self.aggregate_misses.load(Ordering::Relaxed),
        }
    }

    fn record_cache(&self, delta: AggregateCacheDelta) {
        if delta.hits > 0 {
            self.aggregate_hits.fetch_add(delta.hits, Ordering::Relaxed);
        }
        if delta.prefix > 0 {
            self.aggregate_prefix
                .fetch_add(delta.prefix, Ordering::Relaxed);
        }
        if delta.partials > 0 {
            self.aggregate_partials
                .fetch_add(delta.partials, Ordering::Relaxed);
        }
        if delta.misses > 0 {
            self.aggregate_misses
                .fetch_add(delta.misses, Ordering::Relaxed);
        }
    }
}

/// Everything one select through the latch produced, so callers get the
/// answer, the post-select index shape and the kernel-dispatch delta in a
/// single latch acquisition.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectOutcome {
    /// Number of qualifying values.
    pub count: u64,
    /// Sum of the qualifying values.
    pub sum: i128,
    /// The qualifying values, if materialization was requested.
    pub values: Option<Vec<Value>>,
    /// Piece count right after the select.
    pub piece_count: usize,
    /// Average piece length right after the select.
    pub avg_piece_len: f64,
    /// Crack-kernel dispatches this select performed (zero on the shared
    /// fast path).
    pub dispatches: KernelDispatches,
    /// How the aggregate cache served this select's count/sum.
    pub cache: AggregateCacheDelta,
}

/// One query's answer within a [`BatchSelectOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// Number of qualifying values.
    pub count: u64,
    /// Sum of the qualifying values.
    pub sum: i128,
    /// The qualifying values, if materialization was requested.
    pub values: Option<Vec<Value>>,
}

/// Everything one *batched* select through the latch produced: per-query
/// answers plus a single merged piece-shape / kernel-dispatch delta for the
/// whole batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSelectOutcome {
    /// Per-query answers, in the order the queries were passed.
    pub answers: Vec<QueryAnswer>,
    /// Piece count right after the batch.
    pub piece_count: usize,
    /// Average piece length right after the batch.
    pub avg_piece_len: f64,
    /// Crack-kernel dispatches the whole batch performed (zero when every
    /// query was answered on the shared fast path).
    pub dispatches: KernelDispatches,
    /// How the aggregate cache served the batch's count/sum answers
    /// (one hit/partial/miss classification per query).
    pub cache: AggregateCacheDelta,
}

/// Everything one *batched* hot-range refinement pass through the latch
/// produced (see [`ConcurrentCrackerColumn::refine_in_ranges`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRefineOutcome {
    /// How many of the applied actions introduced a new piece.
    pub splits: u64,
    /// Piece count right after the pass.
    pub piece_count: usize,
    /// Average piece length right after the pass.
    pub avg_piece_len: f64,
    /// Crack-kernel dispatches the whole pass performed.
    pub dispatches: KernelDispatches,
}

/// Everything one auxiliary refinement action through the latch produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineOutcome {
    /// Whether the action introduced a new piece.
    pub split: bool,
    /// Piece count right after the action.
    pub piece_count: usize,
    /// Average piece length right after the action.
    pub avg_piece_len: f64,
    /// Crack-kernel dispatches this action performed.
    pub dispatches: KernelDispatches,
}

/// A cracker column protected by a reader/writer latch.
#[derive(Debug)]
pub struct ConcurrentCrackerColumn {
    inner: OrderedRwLock<CrackerColumn>,
    stats: AtomicLatchStats,
}

impl ConcurrentCrackerColumn {
    /// Wraps an existing cracker column.
    #[must_use]
    pub fn new(column: CrackerColumn) -> Self {
        ConcurrentCrackerColumn {
            inner: OrderedRwLock::new(LockLevel::Column, "ConcurrentCrackerColumn::inner", column),
            stats: AtomicLatchStats::default(),
        }
    }

    /// Creates a latch-protected cracker column from raw values.
    #[must_use]
    pub fn from_values(values: Vec<Value>) -> Self {
        Self::new(CrackerColumn::from_values(values))
    }

    /// Creates a latch-protected cracker column by copying a base column.
    #[must_use]
    pub fn from_column(column: &Column, with_rowids: bool) -> Self {
        Self::new(CrackerColumn::from_column(column, with_rowids))
    }

    /// Number of values in the column.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the column is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Current number of pieces.
    #[must_use]
    pub fn piece_count(&self) -> usize {
        self.inner.read().piece_count()
    }

    /// Current average piece length.
    #[must_use]
    pub fn avg_piece_len(&self) -> f64 {
        self.inner.read().avg_piece_len()
    }

    /// Total crack actions applied so far (query-driven plus auxiliary).
    #[must_use]
    pub fn cracks_performed(&self) -> u64 {
        self.inner.read().cracks_performed()
    }

    /// Latch-usage statistics.
    #[must_use]
    pub fn latch_stats(&self) -> LatchStats {
        self.stats.snapshot()
    }

    /// Counts the values in `[lo, hi)`, cracking if necessary.
    pub fn count(&self, lo: Value, hi: Value) -> u64 {
        let r = self.select_range(lo, hi);
        (r.end - r.start) as u64
    }

    /// Materializes the values in `[lo, hi)`, cracking if necessary.
    pub fn materialize(&self, lo: Value, hi: Value) -> Vec<Value> {
        // Fast path under the shared latch.
        {
            let guard = self.inner.read();
            if let Some(range) = guard.select_if_resolved(lo, hi) {
                self.stats.shared_selects.fetch_add(1, Ordering::Relaxed);
                return guard.view(range).to_vec();
            }
        }
        let mut guard = self.inner.write();
        let range = guard.crack_select(lo, hi);
        self.stats.exclusive_selects.fetch_add(1, Ordering::Relaxed);
        guard.view(range).to_vec()
    }

    /// Resolves the position range for `[lo, hi)`, cracking if necessary.
    ///
    /// Note the returned range is only meaningful relative to the column
    /// state at the time of the call; concurrent refinements do not move
    /// values across resolved boundaries, so counts stay stable, but callers
    /// that need the values should use [`ConcurrentCrackerColumn::materialize`].
    pub fn select_range(&self, lo: Value, hi: Value) -> Range<usize> {
        {
            let guard = self.inner.read();
            if let Some(range) = guard.select_if_resolved(lo, hi) {
                self.stats.shared_selects.fetch_add(1, Ordering::Relaxed);
                return range;
            }
        }
        let mut guard = self.inner.write();
        let range = guard.crack_select(lo, hi);
        self.stats.exclusive_selects.fetch_add(1, Ordering::Relaxed);
        range
    }

    /// Answers the range select `[lo, hi)` under the given cracking policy,
    /// returning count, sum, (optionally) the qualifying values and the
    /// kernel-dispatch delta in one latch acquisition.
    ///
    /// If both bounds are already resolved by the cracker index — or land
    /// inside sorted pieces whose prefix-sum arrays are built, where binary
    /// search resolves them read-only — the answer is produced entirely
    /// under the shared latch and no reorganization happens: on a sorted,
    /// prefix-seeded region arbitrary range aggregates never take the write
    /// latch and never fragment the piece table. Stochastic policies only
    /// inject auxiliary splits on the exclusive (cracking) path, where they
    /// pay for themselves.
    pub fn select_with_policy<R: Rng + ?Sized>(
        &self,
        lo: Value,
        hi: Value,
        materialize: bool,
        policy: CrackPolicy,
        rng: &mut R,
    ) -> SelectOutcome {
        // Fast path: both bounds answerable, answer under the shared latch.
        {
            let guard = self.inner.read();
            if let Some(range) = guard.select_if_answerable(lo, hi) {
                self.stats.shared_selects.fetch_add(1, Ordering::Relaxed);
                return self.outcome_for(
                    &guard,
                    range,
                    lo,
                    hi,
                    materialize,
                    KernelDispatches::default(),
                );
            }
        }
        let mut guard = self.inner.write();
        // Re-check under the exclusive latch: a contender that queued on
        // the same bounds may have resolved them already — re-running the
        // policy then would inject redundant auxiliary splits (Mdd1r/DDx)
        // and over-fragment the index.
        if let Some(range) = guard.select_if_answerable(lo, hi) {
            self.stats.shared_selects.fetch_add(1, Ordering::Relaxed);
            return self.outcome_for(
                &guard,
                range,
                lo,
                hi,
                materialize,
                KernelDispatches::default(),
            );
        }
        let before = guard.kernel_dispatches();
        let range = crack_select_with_policy(&mut guard, lo, hi, policy, rng);
        self.stats.exclusive_selects.fetch_add(1, Ordering::Relaxed);
        let delta = guard.kernel_dispatches().since(before);
        self.outcome_for(&guard, range, lo, hi, materialize, delta)
    }

    /// Degraded-mode answer: serves `[lo, hi)` entirely under the shared
    /// latch if the bounds are already answerable read-only (resolved
    /// crack boundaries, or binary search inside prefix-seeded sorted
    /// pieces — [`CrackerColumn::select_if_answerable`]), and returns
    /// `None` when answering would require cracking.
    ///
    /// Unlike [`ConcurrentCrackerColumn::select_with_policy`] this never
    /// takes the exclusive latch and never reorganizes: it is the answer
    /// path a saturated service prefers, where index refinement work is
    /// deferred until load drains.
    #[must_use]
    pub fn try_select_readonly(
        &self,
        lo: Value,
        hi: Value,
        materialize: bool,
    ) -> Option<SelectOutcome> {
        let guard = self.inner.read();
        let range = guard.select_if_answerable(lo, hi)?;
        self.stats.shared_selects.fetch_add(1, Ordering::Relaxed);
        Some(self.outcome_for(
            &guard,
            range,
            lo,
            hi,
            materialize,
            KernelDispatches::default(),
        ))
    }

    /// Answers a whole batch of range selects `(lo, hi, materialize)` in a
    /// **single latch acquisition**, cracking every target piece around all
    /// of the batch's predicate bounds that land in it with one multi-pivot
    /// pass (see [`CrackerColumn::crack_select_batch`]).
    ///
    /// If every query in the batch is already resolved by the cracker index,
    /// the whole batch is answered under the shared latch; otherwise the
    /// exclusive latch is taken once for the batch — instead of once per
    /// query, which is what a loop over
    /// [`ConcurrentCrackerColumn::select_with_policy`] would pay.
    ///
    /// Per-query count/sum/materialization semantics are identical to the
    /// sequential path; the outcome carries one merged kernel-dispatch and
    /// piece-shape delta for the batch.
    pub fn select_batch_with_policy<R: Rng + ?Sized>(
        &self,
        queries: &[(Value, Value, bool)],
        policy: CrackPolicy,
        rng: &mut R,
    ) -> BatchSelectOutcome {
        // Fast path: the entire batch is answerable under the shared latch
        // (bounds resolved, or binary-searchable in prefix-seeded sorted
        // pieces).
        {
            let guard = self.inner.read();
            if let Some(outcome) = self.batch_outcome_if_resolved(&guard, queries) {
                self.stats
                    .shared_selects
                    .fetch_add(queries.len() as u64, Ordering::Relaxed);
                return outcome;
            }
        }
        let mut guard = self.inner.write();
        // Re-check under the exclusive latch: a queued contender may have
        // resolved the same bounds already (see `select_with_policy`).
        if let Some(outcome) = self.batch_outcome_if_resolved(&guard, queries) {
            self.stats
                .shared_selects
                .fetch_add(queries.len() as u64, Ordering::Relaxed);
            return outcome;
        }
        let before = guard.kernel_dispatches();
        let bounds: Vec<(Value, Value)> = queries.iter().map(|&(lo, hi, _)| (lo, hi)).collect();
        let ranges = crack_select_batch_with_policy(&mut guard, &bounds, policy, rng);
        self.stats
            .exclusive_selects
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let dispatches = guard.kernel_dispatches().since(before);
        let piece_count = guard.piece_count();
        let avg_piece_len = guard.avg_piece_len();
        // Release the exclusive latch before the answer phase: the
        // per-query aggregates now compose from cached piece sums (pure
        // metadata), but materialized copies and scan fallbacks for
        // uncached pieces are still reads, and none of it needs exclusivity.
        // Dropping to the shared latch is safe because cracking only ever
        // *adds* boundaries — a refinement racing in between cannot move
        // values across the resolved boundaries these ranges end on, so
        // every range's count, sum and value multiset stay stable.
        drop(guard);
        let guard = self.inner.read();
        let mut cache = AggregateCacheDelta::default();
        let answers = ranges
            .into_iter()
            .zip(queries)
            .map(|(range, &(lo, hi, materialize))| {
                Self::answer_for(&guard, range, lo, hi, materialize, &mut cache)
            })
            .collect();
        self.stats.record_cache(cache);
        BatchSelectOutcome {
            answers,
            piece_count,
            avg_piece_len,
            dispatches,
            cache,
        }
    }

    /// The batch outcome if every query is already answerable read-only
    /// (bounds resolved or binary-searchable in prefix-seeded sorted
    /// pieces).
    ///
    /// Answerability is checked for the *whole* batch (cheap boundary
    /// lookups) before any answer is computed, so a batch with one
    /// unresolved query does not scan the other queries' result ranges only
    /// to discard them.
    fn batch_outcome_if_resolved(
        &self,
        column: &CrackerColumn,
        queries: &[(Value, Value, bool)],
    ) -> Option<BatchSelectOutcome> {
        let ranges = queries
            .iter()
            .map(|&(lo, hi, _)| column.select_if_answerable(lo, hi))
            .collect::<Option<Vec<Range<usize>>>>()?;
        let mut cache = AggregateCacheDelta::default();
        let answers = ranges
            .into_iter()
            .zip(queries)
            .map(|(range, &(lo, hi, materialize))| {
                Self::answer_for(column, range, lo, hi, materialize, &mut cache)
            })
            .collect();
        self.stats.record_cache(cache);
        Some(BatchSelectOutcome {
            answers,
            piece_count: column.piece_count(),
            avg_piece_len: column.avg_piece_len(),
            dispatches: KernelDispatches::default(),
            cache,
        })
    }

    /// One query's answer over its resolved position range. The count is
    /// implicit in the range; the sum is composed from the per-piece
    /// aggregate cache ([`CrackerColumn::aggregate_range`]), which falls
    /// back to the storage layer's chunked masked-sum kernel only for
    /// pieces without a cached sum. A fully cached (or empty) range is
    /// answered with **zero** data-array reads; the classification is
    /// accumulated into `cache`.
    fn answer_for(
        column: &CrackerColumn,
        range: Range<usize>,
        lo: Value,
        hi: Value,
        materialize: bool,
        cache: &mut AggregateCacheDelta,
    ) -> QueryAnswer {
        let agg = column.aggregate_range(range.clone(), lo, hi);
        cache.record(&agg);
        QueryAnswer {
            count: agg.count,
            sum: agg.sum,
            values: materialize.then(|| column.view(range).to_vec()),
        }
    }

    fn outcome_for(
        &self,
        column: &CrackerColumn,
        range: Range<usize>,
        lo: Value,
        hi: Value,
        materialize: bool,
        dispatches: KernelDispatches,
    ) -> SelectOutcome {
        let mut cache = AggregateCacheDelta::default();
        let answer = Self::answer_for(column, range, lo, hi, materialize, &mut cache);
        self.stats.record_cache(cache);
        SelectOutcome {
            count: answer.count,
            sum: answer.sum,
            values: answer.values,
            piece_count: column.piece_count(),
            avg_piece_len: column.avg_piece_len(),
            dispatches,
            cache,
        }
    }

    /// Applies one auxiliary random refinement action under the exclusive
    /// latch, reporting the action's effect and dispatch delta.
    pub fn refine<R: Rng + ?Sized>(&self, rng: &mut R) -> RefineOutcome {
        let mut guard = self.inner.write();
        let before = guard.kernel_dispatches();
        let split = guard.random_crack(rng);
        if split {
            self.stats.refinements.fetch_add(1, Ordering::Relaxed);
        }
        RefineOutcome {
            split,
            piece_count: guard.piece_count(),
            avg_piece_len: guard.avg_piece_len(),
            dispatches: guard.kernel_dispatches().since(before),
        }
    }

    /// Applies one auxiliary random refinement action under the exclusive
    /// latch. Returns `true` if the action introduced a new piece; only
    /// such effective actions are counted in [`LatchStats::refinements`].
    pub fn random_crack<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.refine(rng).split
    }

    /// Applies one auxiliary refinement action restricted to the value range
    /// `[lo, hi)` (hot-range boosting), reporting the action's effect and
    /// dispatch delta.
    pub fn refine_in_range<R: Rng + ?Sized>(
        &self,
        lo: Value,
        hi: Value,
        rng: &mut R,
    ) -> RefineOutcome {
        let mut guard = self.inner.write();
        let before = guard.kernel_dispatches();
        let split = guard.random_crack_in_range(lo, hi, rng);
        if split {
            self.stats.refinements.fetch_add(1, Ordering::Relaxed);
        }
        RefineOutcome {
            split,
            piece_count: guard.piece_count(),
            avg_piece_len: guard.avg_piece_len(),
            dispatches: guard.kernel_dispatches().since(before),
        }
    }

    /// Applies `per_range` auxiliary refinement actions restricted to each
    /// of `ranges` under a **single** exclusive-latch acquisition — the
    /// batched form of [`ConcurrentCrackerColumn::refine_in_range`], used
    /// for hot-range boosting of a whole query batch (one latch round trip
    /// instead of one per boost per hot query).
    pub fn refine_in_ranges<R: Rng + ?Sized>(
        &self,
        ranges: &[(Value, Value)],
        per_range: u64,
        rng: &mut R,
    ) -> BatchRefineOutcome {
        let mut guard = self.inner.write();
        let before = guard.kernel_dispatches();
        let mut splits = 0u64;
        for &(lo, hi) in ranges {
            for _ in 0..per_range {
                if guard.random_crack_in_range(lo, hi, rng) {
                    splits += 1;
                }
            }
        }
        if splits > 0 {
            self.stats.refinements.fetch_add(splits, Ordering::Relaxed);
        }
        BatchRefineOutcome {
            splits,
            piece_count: guard.piece_count(),
            avg_piece_len: guard.avg_piece_len(),
            dispatches: guard.kernel_dispatches().since(before),
        }
    }

    /// Applies one auxiliary refinement action restricted to the value range
    /// `[lo, hi)` (hot-range boosting). Returns `true` if a new piece was
    /// introduced.
    pub fn random_crack_in_range<R: Rng + ?Sized>(
        &self,
        lo: Value,
        hi: Value,
        rng: &mut R,
    ) -> bool {
        self.refine_in_range(lo, hi, rng).split
    }

    /// Builds prefix-sum arrays for every sorted piece that lacks one,
    /// under a single **write**-latch acquisition (build once, read many:
    /// once seeded, every reader serves interior sorted-piece aggregates
    /// from the shared arrays without ever taking the write latch again).
    /// Returns how many pieces were seeded.
    ///
    /// Probes under the *shared* latch first: the background tuner calls
    /// this on every idle batch, and a column with nothing to seed — the
    /// steady state, and the only state purely cracked columns ever have —
    /// must not acquire (or make queries queue behind) the exclusive latch.
    pub fn seed_prefix_sums(&self) -> usize {
        if !self.inner.read().needs_prefix_seeding() {
            return 0;
        }
        self.inner.write().seed_prefix_sums()
    }

    /// Fully sorts the column under the exclusive latch (see
    /// [`CrackerColumn::sort_fully`]): the piece table collapses to one
    /// sorted, prefix-seeded piece, after which every range aggregate is
    /// answered read-only under the shared latch.
    pub fn sort_fully(&self) {
        if self.inner.read().is_fully_sorted() {
            return;
        }
        self.inner.write().sort_fully();
    }

    /// Ripple-inserts `v` (carrying `rowid` when the column keeps row ids)
    /// under the exclusive latch — the engine's durable-update path applies
    /// WAL-logged inserts through this.
    pub fn insert(&self, v: Value, rowid: holistic_storage::RowId) {
        self.inner.write().ripple_insert(v, rowid);
    }

    /// Batched ripple insert under a single acquisition of the exclusive
    /// latch: one sweep over the piece table for the whole batch (see
    /// [`CrackerColumn::ripple_insert_batch`]). The engine's WAL replay
    /// applies runs of insert records through this.
    pub fn insert_batch(&self, batch: &[(Value, holistic_storage::RowId)]) {
        self.inner.write().ripple_insert_batch(batch);
    }

    /// Ripple-deletes one occurrence of `v` under the exclusive latch,
    /// returning whether a value was removed.
    pub fn delete(&self, v: Value) -> bool {
        self.inner.write().ripple_delete(v)
    }

    /// Runs a closure with shared access to the underlying cracker column.
    pub fn with_read<T>(&self, f: impl FnOnce(&CrackerColumn) -> T) -> T {
        f(&self.inner.read())
    }

    /// Validates the underlying cracker-column invariants.
    #[must_use]
    pub fn validate(&self) -> bool {
        self.inner.read().validate()
    }

    /// One budgeted scrub step: validates up to `budget` pieces starting
    /// at piece index `from`, entirely under the shared latch (a scrub is
    /// a read; it must not make queries queue). Returns how far it got so
    /// the scrubber can resume where it left off next idle window.
    #[must_use]
    pub fn scrub_pieces(&self, from: usize, budget: usize) -> ScrubOutcome {
        let guard = self.inner.read();
        let total = guard.piece_count();
        let start = from.min(total);
        let end = start.saturating_add(budget.max(1)).min(total);
        let valid = guard.validate_piece_range(start..end);
        ScrubOutcome {
            checked: end - start,
            next: (end < total).then_some(end),
            valid,
        }
    }

    /// Applies one injected corruption to the learned state under the
    /// exclusive latch (see [`crate::corrupt`]). Returns whether a field
    /// was actually flipped.
    ///
    /// # Panics
    /// [`crate::corrupt::CorruptionKind::Panic`] propagates its panic out
    /// of the latch (the guard unwinds cleanly); the caller's containment
    /// boundary is expected to catch it.
    pub fn corrupt(&self, kind: crate::corrupt::CorruptionKind) -> bool {
        crate::corrupt::corrupt_column(&mut self.inner.write(), kind)
    }
}

/// Outcome of one [`ConcurrentCrackerColumn::scrub_pieces`] step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// Pieces validated by this step.
    pub checked: usize,
    /// Piece index to resume from, or `None` when the step reached the
    /// end of the piece table (the scrub cycle for this column is done).
    pub next: Option<usize>,
    /// Whether every checked piece passed validation.
    pub valid: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn data(n: usize) -> Vec<Value> {
        (0..n as Value).map(|i| (i * 7919) % (n as Value)).collect()
    }

    fn scan_count(values: &[Value], lo: Value, hi: Value) -> u64 {
        values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
    }

    #[test]
    fn single_threaded_counts_match_scan() {
        let values = data(1000);
        let c = ConcurrentCrackerColumn::from_values(values.clone());
        for &(lo, hi) in &[(0, 100), (100, 350), (900, 1000), (500, 400)] {
            assert_eq!(c.count(lo, hi), scan_count(&values, lo, hi));
        }
        assert!(c.validate());
        assert!(c.latch_stats().exclusive_selects >= 3);
    }

    #[test]
    fn repeated_query_uses_shared_path() {
        let values = data(1000);
        let c = ConcurrentCrackerColumn::from_values(values);
        let _ = c.count(100, 200);
        let exclusive_before = c.latch_stats().exclusive_selects;
        let _ = c.count(100, 200);
        let stats = c.latch_stats();
        assert_eq!(stats.exclusive_selects, exclusive_before);
        assert!(stats.shared_selects >= 1);
    }

    #[test]
    fn materialize_returns_only_qualifying_values() {
        let values = data(500);
        let c = ConcurrentCrackerColumn::from_values(values.clone());
        let got = c.materialize(50, 150);
        assert_eq!(got.len() as u64, scan_count(&values, 50, 150));
        assert!(got.iter().all(|&v| (50..150).contains(&v)));
        // Second call takes the shared path and returns the same multiset.
        let mut again = c.materialize(50, 150);
        let mut first = got.clone();
        again.sort_unstable();
        first.sort_unstable();
        assert_eq!(again, first);
    }

    #[test]
    fn select_with_policy_matches_scan_and_reports_dispatches() {
        let values = data(2000);
        let c = ConcurrentCrackerColumn::from_values(values.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let first = c.select_with_policy(100, 400, true, CrackPolicy::Standard, &mut rng);
        assert_eq!(first.count, scan_count(&values, 100, 400));
        let expected_sum: i128 = values
            .iter()
            .filter(|&&v| (100..400).contains(&v))
            .map(|&v| i128::from(v))
            .sum();
        assert_eq!(first.sum, expected_sum);
        assert_eq!(first.values.as_ref().unwrap().len() as u64, first.count);
        assert!(first.dispatches.total() >= 1, "first select must crack");
        assert!(first.piece_count >= 2);
        // Second identical select runs on the shared path: no dispatches.
        let again = c.select_with_policy(100, 400, false, CrackPolicy::Standard, &mut rng);
        assert_eq!(again.count, first.count);
        assert_eq!(again.sum, first.sum);
        assert_eq!(again.dispatches.total(), 0);
        assert!(again.values.is_none());
        assert!(c.latch_stats().shared_selects >= 1);
        assert!(c.validate());
    }

    #[test]
    fn stochastic_policies_stay_correct_through_the_latch() {
        let values = data(4000);
        for policy in [CrackPolicy::ddr(), CrackPolicy::ddc(), CrackPolicy::Mdd1r] {
            let c = ConcurrentCrackerColumn::from_values(values.clone());
            let mut rng = StdRng::seed_from_u64(13);
            for &(lo, hi) in &[(10, 500), (1000, 1400), (3000, 3900), (500, 400)] {
                let outcome = c.select_with_policy(lo, hi, false, policy, &mut rng);
                assert_eq!(
                    outcome.count,
                    scan_count(&values, lo, hi),
                    "{policy:?} [{lo},{hi})"
                );
            }
            assert!(c.validate());
        }
    }

    #[test]
    fn concurrent_queries_and_refinements_are_correct() {
        let n = 20_000;
        let values = data(n);
        let expected: Vec<(Value, Value, u64)> = (0..16)
            .map(|i| {
                let lo = (i * 1000) % (n as Value);
                let hi = lo + 500;
                (lo, hi, scan_count(&values, lo, hi))
            })
            .collect();
        let column = Arc::new(ConcurrentCrackerColumn::from_values(values));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let column = Arc::clone(&column);
            let expected = expected.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                let mut effective = 0u64;
                for round in 0..8 {
                    for &(lo, hi, want) in &expected {
                        assert_eq!(column.count(lo, hi), want, "thread {t} round {round}");
                    }
                    // Interleave idle-time style refinements.
                    for _ in 0..5 {
                        if column.random_crack(&mut rng) {
                            effective += 1;
                        }
                    }
                }
                effective
            }));
        }
        let mut total_effective = 0;
        for h in handles {
            total_effective += h.join().expect("worker panicked");
        }
        assert!(column.validate());
        assert!(column.piece_count() > 16);
        let stats = column.latch_stats();
        // Only actions that introduced a piece count as refinement work.
        assert_eq!(stats.refinements, total_effective);
        assert!(stats.refinements <= 4 * 8 * 5);
        assert!(
            stats.shared_selects > 0,
            "expected some shared-path selects"
        );
    }

    #[test]
    fn noop_refinements_are_not_counted_as_work() {
        // Regression: the old code bumped `refinements` before checking
        // whether the crack did anything, so an empty column racked up
        // refinement counts without ever doing work.
        let empty = ConcurrentCrackerColumn::from_values(vec![]);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert!(!empty.random_crack(&mut rng));
        }
        assert_eq!(empty.latch_stats().refinements, 0);

        // A column of identical values converges after a single split; the
        // remaining actions are no-ops and must not be counted either.
        let converged = ConcurrentCrackerColumn::from_values(vec![5; 64]);
        let mut effective = 0;
        for _ in 0..20 {
            if converged.random_crack(&mut rng) {
                effective += 1;
            }
        }
        assert!(effective <= 1);
        assert_eq!(converged.latch_stats().refinements, effective);

        // Same contract for the hot-range variant.
        assert!(!converged.random_crack_in_range(5, 5, &mut rng));
        assert_eq!(converged.latch_stats().refinements, effective);
    }

    #[test]
    fn batch_select_matches_scan_and_takes_one_exclusive_pass() {
        let values = data(4000);
        let c = ConcurrentCrackerColumn::from_values(values.clone());
        let queries: Vec<(Value, Value, bool)> = vec![
            (100, 400, false),
            (1000, 1200, true),
            (3500, 3900, false),
            (500, 400, false),
        ];
        let mut rng = StdRng::seed_from_u64(21);
        let outcome = c.select_batch_with_policy(&queries, CrackPolicy::Standard, &mut rng);
        assert_eq!(outcome.answers.len(), queries.len());
        for (a, &(lo, hi, materialize)) in outcome.answers.iter().zip(&queries) {
            assert_eq!(a.count, scan_count(&values, lo, hi), "[{lo},{hi})");
            let expected_sum: i128 = values
                .iter()
                .filter(|&&v| v >= lo && v < hi)
                .map(|&v| i128::from(v))
                .sum();
            assert_eq!(a.sum, expected_sum, "[{lo},{hi})");
            assert_eq!(a.values.is_some(), materialize);
            if let Some(vs) = &a.values {
                assert_eq!(vs.len() as u64, a.count);
            }
        }
        assert!(outcome.dispatches.total() >= 1, "cold batch must crack");
        assert!(outcome.piece_count >= 2);
        assert_eq!(c.latch_stats().exclusive_selects, queries.len() as u64);
        assert!(c.validate());

        // The identical batch now runs entirely on the shared path.
        let again = c.select_batch_with_policy(&queries, CrackPolicy::Standard, &mut rng);
        assert_eq!(again.dispatches.total(), 0);
        assert_eq!(c.latch_stats().shared_selects, queries.len() as u64);
        for (a, b) in again.answers.iter().zip(&outcome.answers) {
            assert_eq!(a.count, b.count);
            assert_eq!(a.sum, b.sum);
        }
    }

    #[test]
    fn batch_select_stochastic_policies_stay_correct() {
        let values = data(4000);
        for policy in [CrackPolicy::ddr(), CrackPolicy::ddc(), CrackPolicy::Mdd1r] {
            let c = ConcurrentCrackerColumn::from_values(values.clone());
            let mut rng = StdRng::seed_from_u64(31);
            let queries: Vec<(Value, Value, bool)> = vec![
                (10, 500, false),
                (1000, 1400, false),
                (3000, 3900, false),
                (500, 400, false),
            ];
            let outcome = c.select_batch_with_policy(&queries, policy, &mut rng);
            for (a, &(lo, hi, _)) in outcome.answers.iter().zip(&queries) {
                assert_eq!(
                    a.count,
                    scan_count(&values, lo, hi),
                    "{policy:?} [{lo},{hi})"
                );
            }
            assert!(c.validate(), "{policy:?}");
        }
    }

    #[test]
    fn batch_select_empty_batch_and_empty_column() {
        let c = ConcurrentCrackerColumn::from_values(data(100));
        let mut rng = StdRng::seed_from_u64(0);
        let outcome = c.select_batch_with_policy(&[], CrackPolicy::Standard, &mut rng);
        assert!(outcome.answers.is_empty());
        assert_eq!(outcome.dispatches.total(), 0);
        let empty = ConcurrentCrackerColumn::from_values(vec![]);
        let outcome =
            empty.select_batch_with_policy(&[(1, 5, false)], CrackPolicy::Mdd1r, &mut rng);
        assert_eq!(outcome.answers[0].count, 0);
    }

    #[test]
    fn resolved_aggregates_are_served_without_data_reads() {
        let values = data(4000);
        let c = ConcurrentCrackerColumn::from_values(values.clone());
        let mut rng = StdRng::seed_from_u64(17);
        // First select cracks — the fused kernels seed the cache, so even
        // the cracking select answers its aggregate from piece sums.
        let first = c.select_with_policy(100, 900, false, CrackPolicy::Standard, &mut rng);
        assert_eq!(first.cache.hits, 1);
        assert_eq!(first.cache.scanned_values, 0);
        // The repeated (resolved, shared-latch) select: zero data reads.
        let again = c.select_with_policy(100, 900, false, CrackPolicy::Standard, &mut rng);
        assert_eq!(again.count, first.count);
        assert_eq!(again.sum, first.sum);
        assert_eq!(again.cache.hits, 1);
        assert_eq!(
            again.cache.scanned_values, 0,
            "resolved path must not touch data"
        );
        let stats = c.latch_stats();
        assert_eq!(stats.aggregate_hits, 2);
        assert_eq!(stats.aggregate_partials + stats.aggregate_misses, 0);
    }

    #[test]
    fn batch_aggregates_compose_from_the_cache() {
        let values = data(4000);
        let c = ConcurrentCrackerColumn::from_values(values.clone());
        let queries: Vec<(Value, Value, bool)> =
            vec![(100, 400, false), (1000, 1200, false), (3500, 3900, false)];
        let mut rng = StdRng::seed_from_u64(19);
        let outcome = c.select_batch_with_policy(&queries, CrackPolicy::Standard, &mut rng);
        assert_eq!(outcome.cache.hits, queries.len() as u64);
        assert_eq!(outcome.cache.scanned_values, 0);
        for (a, &(lo, hi, _)) in outcome.answers.iter().zip(&queries) {
            let expected: i128 = values
                .iter()
                .filter(|&&v| v >= lo && v < hi)
                .map(|&v| i128::from(v))
                .sum();
            assert_eq!(a.sum, expected, "[{lo},{hi})");
        }
        // The resolved replay stays metadata-only too.
        let again = c.select_batch_with_policy(&queries, CrackPolicy::Standard, &mut rng);
        assert_eq!(again.cache.hits, queries.len() as u64);
        assert_eq!(again.cache.scanned_values, 0);
        assert_eq!(c.latch_stats().aggregate_hits, 2 * queries.len() as u64);
    }

    #[test]
    fn sorted_prefix_aggregates_stay_on_the_shared_latch() {
        // A sorted, prefix-seeded column answers *arbitrary* interior
        // aggregates read-only: no write latch, no splits, zero data reads,
        // classified as prefix hits.
        let mut inner = CrackerColumn::from_values(data(4000));
        inner.sort_fully();
        let c = ConcurrentCrackerColumn::new(inner);
        let mut rng = StdRng::seed_from_u64(23);
        let pieces_before = c.piece_count();
        for &(lo, hi) in &[(100, 900), (0, 4000), (3999, 4001), (250, 251)] {
            let out = c.select_with_policy(lo, hi, false, CrackPolicy::Standard, &mut rng);
            assert_eq!(out.count, scan_count(&data(4000), lo, hi), "[{lo},{hi})");
            let expected: i128 = data(4000)
                .iter()
                .filter(|&&v| v >= lo && v < hi)
                .map(|&v| i128::from(v))
                .sum();
            assert_eq!(out.sum, expected, "[{lo},{hi})");
            assert_eq!(out.cache.scanned_values, 0, "[{lo},{hi})");
            assert_eq!(out.cache.zero_read(), 1, "[{lo},{hi})");
            assert_eq!(out.dispatches.total(), 0);
        }
        assert_eq!(c.piece_count(), pieces_before, "no fragmentation");
        let stats = c.latch_stats();
        assert_eq!(stats.exclusive_selects, 0, "never took the write latch");
        assert_eq!(stats.shared_selects, 4);
        assert!(
            stats.aggregate_prefix >= 3,
            "interior bounds are prefix hits"
        );
        assert_eq!(stats.aggregate_partials + stats.aggregate_misses, 0);
        // The batched path shares the same read-only fast path.
        let queries: Vec<(Value, Value, bool)> = vec![(5, 77, false), (1000, 3500, true)];
        let outcome = c.select_batch_with_policy(&queries, CrackPolicy::Standard, &mut rng);
        assert_eq!(outcome.dispatches.total(), 0);
        assert_eq!(outcome.cache.scanned_values, 0);
        assert_eq!(outcome.cache.zero_read(), 2);
        assert_eq!(c.latch_stats().exclusive_selects, 0);
        assert!(c.validate());
    }

    #[test]
    fn seed_prefix_sums_unlocks_the_read_only_sorted_path() {
        // A sorted column handed over *without* prefixes cracks on first
        // touch; after seeding (one write-latch pass), the same shape of
        // query runs read-only.
        let mut inner = CrackerColumn::from_values(data(1000));
        inner.sort_fully();
        // Strip what sort_fully seeded to model a pre-seeding column.
        {
            let (_, _, index) = inner.parts_mut();
            for p in index.pieces_mut() {
                p.sum = None;
                p.prefix = None;
            }
        }
        let c = ConcurrentCrackerColumn::new(inner);
        assert_eq!(c.seed_prefix_sums(), 1);
        assert_eq!(c.seed_prefix_sums(), 0, "second seeding is a no-op");
        let mut rng = StdRng::seed_from_u64(29);
        let out = c.select_with_policy(100, 300, false, CrackPolicy::Standard, &mut rng);
        assert_eq!(out.count, scan_count(&data(1000), 100, 300));
        assert_eq!(out.cache.scanned_values, 0);
        assert_eq!(c.latch_stats().exclusive_selects, 0);
    }

    #[test]
    fn empty_column() {
        let c = ConcurrentCrackerColumn::from_values(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.count(0, 10), 0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(!c.random_crack(&mut rng));
    }

    #[test]
    fn refine_reports_effect_and_shape() {
        let c = ConcurrentCrackerColumn::from_values((0..1000).rev().collect());
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = c.refine(&mut rng);
        assert!(outcome.split);
        assert!(outcome.piece_count >= 2);
        assert!(outcome.avg_piece_len <= 1000.0);
        assert_eq!(c.latch_stats().refinements, 1);
        assert!(c.cracks_performed() >= 1);
    }

    #[test]
    fn with_read_exposes_column_state() {
        let c = ConcurrentCrackerColumn::from_values(data(100));
        let _ = c.count(10, 20);
        let pieces = c.with_read(|col| col.piece_count());
        assert!(pieces >= 2);
    }
}
