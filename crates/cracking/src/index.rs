//! The cracker index: an ordered table of [`Piece`]s describing how far a
//! cracker column has been partitioned.
//!
//! MonetDB implements this as an AVL tree keyed on crack values; an ordered
//! vector of pieces provides the same O(log P) lookup (P = number of pieces)
//! with better cache behaviour and much simpler invariants, at the cost of
//! O(P) splits — irrelevant in practice because P is small compared to the
//! column (cracking stops paying off once pieces fit in the CPU cache, as
//! the paper's cost model observes).

use crate::piece::Piece;
use crate::Value;

/// One affected piece of a batch pass: the piece's index, the splits the
/// pass produced inside it (`(position, pivot)` pairs, the
/// [`PieceIndex::split_multi`] contract), and the pass's per-segment sums —
/// fused kernel sums for unsorted pieces, prefix-sum differences for
/// binary-searched sorted pieces, `None` only for sum-less maintenance.
/// Consumed by [`PieceIndex::split_grouped_with_sums`].
pub type SplitGroup = (usize, Vec<(usize, Value)>, Option<Vec<i128>>);

/// The cracker index: an ordered, contiguous list of pieces covering
/// positions `[0, len)` of a cracker column.
///
/// Invariants (checked by [`PieceIndex::validate`]):
/// * pieces are contiguous and cover exactly `[0, len)`;
/// * pieces are non-empty (unless the column itself is empty);
/// * value bounds are consistent: `pieces[i].hi == pieces[i+1].lo`
///   whenever both are known, the first piece has `lo = None` or a bound
///   that under-approximates the minimum, and bounds never contradict the
///   data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PieceIndex {
    pieces: Vec<Piece>,
    len: usize,
}

impl PieceIndex {
    /// Creates an index with a single unbounded piece covering `[0, len)`.
    #[must_use]
    pub fn new(len: usize) -> Self {
        let pieces = if len == 0 {
            Vec::new()
        } else {
            vec![Piece::unbounded(0, len)]
        };
        PieceIndex { pieces, len }
    }

    /// Creates an index with a single piece covering `[0, len)` that is
    /// flagged as fully sorted. Used after a full (offline) sort, so
    /// subsequent selects resolve boundaries with binary search instead of
    /// data movement.
    #[must_use]
    pub fn new_sorted(len: usize) -> Self {
        let pieces = if len == 0 {
            Vec::new()
        } else {
            vec![Piece {
                sorted: true,
                ..Piece::unbounded(0, len)
            }]
        };
        PieceIndex { pieces, len }
    }

    /// Reassembles an index from decoded pieces (the snapshot-recovery
    /// path). Only the structural invariants that need no data are checked
    /// here — contiguity, coverage of `[0, len)`, bound ordering; callers
    /// must still run [`PieceIndex::validate`] against the recovered data
    /// before trusting cached sums, sorted flags or prefix arrays.
    #[must_use]
    pub fn from_parts(len: usize, pieces: Vec<Piece>) -> Option<Self> {
        if len == 0 {
            return pieces.is_empty().then_some(PieceIndex { pieces, len });
        }
        if pieces.first()?.start != 0 || pieces.last()?.end != len {
            return None;
        }
        for w in pieces.windows(2) {
            if w[0].end != w[1].start {
                return None;
            }
        }
        if pieces.iter().any(|p| p.is_empty() || p.start > p.end) {
            return None;
        }
        Some(PieceIndex { pieces, len })
    }

    /// Number of positions covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the indexed column is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pieces.
    #[must_use]
    pub fn piece_count(&self) -> usize {
        self.pieces.len()
    }

    /// All pieces, in positional (== value) order.
    #[must_use]
    pub fn pieces(&self) -> &[Piece] {
        &self.pieces
    }

    /// The piece at index `idx` (cloned; the prefix-sum handle, if any, is
    /// shared).
    #[must_use]
    pub fn piece(&self, idx: usize) -> Piece {
        self.pieces[idx].clone()
    }

    /// Average piece length (`len / piece_count`), or 0 for an empty column.
    #[must_use]
    pub fn avg_piece_len(&self) -> f64 {
        if self.pieces.is_empty() {
            0.0
        } else {
            self.len as f64 / self.pieces.len() as f64
        }
    }

    /// Length of the largest piece, or 0 for an empty column.
    #[must_use]
    pub fn max_piece_len(&self) -> usize {
        self.pieces.iter().map(Piece::len).max().unwrap_or(0)
    }

    /// Index of the piece that would hold value `v`.
    ///
    /// Returns the first piece whose exclusive upper bound is greater than
    /// `v` (the last piece for values beyond every bound). For an empty
    /// column there is no piece and `None` is returned.
    #[must_use]
    pub fn find_piece_for_value(&self, v: Value) -> Option<usize> {
        if self.pieces.is_empty() {
            return None;
        }
        let idx = self
            .pieces
            .partition_point(|p| p.hi.is_some_and(|hi| hi <= v));
        Some(idx.min(self.pieces.len() - 1))
    }

    /// Index of the piece containing position `pos`.
    #[must_use]
    pub fn find_piece_for_position(&self, pos: usize) -> Option<usize> {
        if pos >= self.len {
            return None;
        }
        let idx = self.pieces.partition_point(|p| p.end <= pos);
        Some(idx)
    }

    /// Records a crack of piece `idx` at absolute position `split_pos` with
    /// pivot value `pivot`: positions `[start, split_pos)` hold values
    /// `< pivot`, positions `[split_pos, end)` hold values `>= pivot`.
    ///
    /// If the split lands on the piece's start or end, no new piece is
    /// created; the existing piece's value bound is tightened instead, which
    /// still records the knowledge that `pivot` is a resolved boundary.
    ///
    /// Returns `true` if a new piece was created.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds or `split_pos` lies outside the piece.
    pub fn split(&mut self, idx: usize, split_pos: usize, pivot: Value) -> bool {
        self.split_multi(idx, &[(split_pos, pivot)]) == 1
    }

    /// Like [`PieceIndex::split`], but also records the aggregate-cache sums
    /// a fused partitioning pass produced: `lo_sum` is the sum of the values
    /// `< pivot`, `total_sum` the sum of the whole pre-split piece. Both
    /// resulting pieces (or the single tightened piece) get a trusted cached
    /// sum.
    pub fn split_with_sums(
        &mut self,
        idx: usize,
        split_pos: usize,
        pivot: Value,
        lo_sum: i128,
        total_sum: i128,
    ) -> bool {
        self.split_multi_with_sums(
            idx,
            &[(split_pos, pivot)],
            Some(&[lo_sum, total_sum - lo_sum]),
        ) == 1
    }

    /// Records all splits of one multi-pivot partitioning pass over piece
    /// `idx` in a single piece-table edit.
    ///
    /// `splits` are `(split_pos, pivot)` pairs — each with the same meaning
    /// as [`PieceIndex::split`] — ordered by position, with strictly
    /// increasing pivots. Splits landing on the piece's start or end tighten
    /// its value bounds; interior splits carve the piece into sub-pieces.
    /// The whole edit is applied with one `Vec::splice`, so the piece table's
    /// tail is shifted once per pass instead of once per split (the former
    /// O(pieces) `Vec::insert` per crack).
    ///
    /// Returns the number of new pieces created.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds, any split position lies outside the
    /// piece, positions decrease, or pivots are not strictly increasing.
    pub fn split_multi(&mut self, idx: usize, splits: &[(usize, Value)]) -> usize {
        self.split_multi_with_sums(idx, splits, None)
    }

    /// Like [`PieceIndex::split_multi`], but also records the per-segment
    /// sums of the fused multi-pivot pass that produced the splits:
    /// `seg_sums[i]` is the sum of the values between split `i - 1` and
    /// split `i` (with `seg_sums[0]` before the first split and the last
    /// entry after the last split — `splits.len() + 1` entries total).
    /// With `None`, newly created pieces get no cached sum (a pure
    /// bound-tightening edit still keeps the existing one, since the piece's
    /// contents are unchanged).
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`PieceIndex::split_multi`], or if
    /// `seg_sums` has the wrong length.
    pub fn split_multi_with_sums(
        &mut self,
        idx: usize,
        splits: &[(usize, Value)],
        seg_sums: Option<&[i128]>,
    ) -> usize {
        if splits.is_empty() {
            return 0;
        }
        let p = self.pieces[idx].clone();
        let mut replacement: Vec<Piece> = Vec::with_capacity(splits.len() + 1);
        Self::expand_piece(p, splits, seg_sums, &mut replacement);
        let created = replacement.len() - 1;
        if created == 0 {
            // Pure bound tightening: no table surgery needed.
            self.pieces[idx] = replacement.swap_remove(0);
        } else {
            self.pieces.reserve(created);
            self.pieces.splice(idx..=idx, replacement);
        }
        created
    }

    /// Records the splits of a whole batch pass over *many* pieces in a
    /// single piece-table rebuild.
    ///
    /// Each [`SplitGroup`] pairs an affected piece index with the splits
    /// produced inside that piece (same contract as
    /// [`PieceIndex::split_multi_with_sums`], including the optional fused
    /// per-segment sums), strictly ascending by piece index. The table is
    /// rebuilt once in `O(P + k)`, instead of the `O(P)` tail shift per
    /// affected piece that repeated `split_multi` calls would pay — on a
    /// heavily cracked column that repeated shifting dominates the
    /// index-maintenance cost of a large batch.
    ///
    /// Returns the total number of new pieces created.
    ///
    /// # Panics
    ///
    /// Panics under the per-piece conditions of
    /// [`PieceIndex::split_multi_with_sums`], or if `groups` is not
    /// strictly ascending by piece index.
    pub fn split_grouped_with_sums(&mut self, groups: &[SplitGroup]) -> usize {
        if groups.is_empty() {
            return 0;
        }
        assert!(
            groups.windows(2).all(|w| w[0].0 < w[1].0),
            "groups must be strictly ascending by piece index"
        );
        let total_splits: usize = groups.iter().map(|(_, s, _)| s.len()).sum();
        let mut rebuilt: Vec<Piece> = Vec::with_capacity(self.pieces.len() + total_splits);
        let mut next_group = groups.iter().peekable();
        for (idx, p) in self.pieces.iter().enumerate() {
            match next_group.peek() {
                Some((group_idx, splits, seg_sums)) if *group_idx == idx => {
                    Self::expand_piece(p.clone(), splits, seg_sums.as_deref(), &mut rebuilt);
                    next_group.next();
                }
                _ => rebuilt.push(p.clone()),
            }
        }
        assert!(
            next_group.peek().is_none(),
            "group piece index out of bounds"
        );
        let created = rebuilt.len() - self.pieces.len();
        self.pieces = rebuilt;
        created
    }

    /// Expands one piece into the pieces its splits produce, pushing them
    /// onto `out` (shared by [`PieceIndex::split_multi_with_sums`] and
    /// [`PieceIndex::split_grouped_with_sums`]). Pushes the piece unchanged
    /// (modulo bound tightening) when no interior split exists; `splits`
    /// must be non-empty.
    ///
    /// `seg_sums`, when present, holds one sum per kernel segment
    /// (`splits.len() + 1` entries, segment `i` ending at split `i`); each
    /// output piece's cached sum is the total of the segments it absorbs.
    /// Without sums, created pieces get `sum: None` and a pure tightening
    /// keeps the piece's existing cached sum (its contents are unchanged).
    ///
    /// A *sorted* piece's shared prefix-sum array is inherited by every
    /// output piece: splitting a sorted piece is binary search, so no data
    /// moved and the absolute-position array stays exact for all
    /// descendants. An unsorted piece was just permuted by a kernel pass, so
    /// its outputs never inherit a prefix (it would be stale).
    fn expand_piece(
        p: Piece,
        splits: &[(usize, Value)],
        seg_sums: Option<&[i128]>,
        out: &mut Vec<Piece>,
    ) {
        assert!(
            splits
                .windows(2)
                .all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1),
            "splits must have non-decreasing positions and strictly increasing pivots"
        );
        for &(split_pos, _) in splits {
            assert!(
                split_pos >= p.start && split_pos <= p.end,
                "split position {split_pos} outside piece [{}, {})",
                p.start,
                p.end
            );
        }
        if let Some(sums) = seg_sums {
            assert_eq!(
                sums.len(),
                splits.len() + 1,
                "one segment sum per kernel segment"
            );
        }
        // Walk the splits left to right. `cur_start`/`cur_lo` describe the
        // sub-piece currently open on the left; `end_hi` collects
        // upper-bound tightenings from splits that land on the piece's end
        // (the smallest such pivot wins); `acc` collects the segment sums
        // absorbed into the currently open sub-piece.
        let inherited_prefix = if p.sorted { p.prefix.clone() } else { None };
        let first_out = out.len();
        let mut cur_start = p.start;
        let mut cur_lo = p.lo;
        let mut end_hi = p.hi;
        let mut acc = 0i128;
        for (j, &(split_pos, pivot)) in splits.iter().enumerate() {
            if let Some(sums) = seg_sums {
                acc += sums[j];
            }
            if split_pos == cur_start {
                // Empty left side: every remaining value is >= pivot.
                cur_lo = Some(cur_lo.map_or(pivot, |lo| lo.max(pivot)));
            } else if split_pos == p.end {
                // Every remaining value is < pivot. Pivots increase, so the
                // first end-split carries the tightest bound. The segment
                // ending here stays in `acc` for the final piece.
                end_hi = Some(end_hi.map_or(pivot, |hi| hi.min(pivot)));
            } else {
                out.push(Piece {
                    start: cur_start,
                    end: split_pos,
                    lo: cur_lo,
                    hi: Some(pivot),
                    sorted: p.sorted,
                    sum: seg_sums.map(|_| acc),
                    prefix: inherited_prefix.clone(),
                });
                acc = 0;
                cur_start = split_pos;
                cur_lo = Some(pivot);
            }
        }
        let final_sum = match seg_sums {
            Some(sums) => Some(acc + sums[splits.len()]),
            // Pure tightening without kernel sums: contents unchanged, the
            // cached sum (if any) stays trusted.
            None if out.len() == first_out => p.sum,
            None => None,
        };
        out.push(Piece {
            start: cur_start,
            end: p.end,
            lo: cur_lo,
            hi: end_hi,
            sorted: p.sorted,
            sum: final_sum,
            prefix: inherited_prefix,
        });
    }

    /// Returns the resolved boundary position for value `v`, if the index
    /// already knows where values `>= v` begin without any data movement.
    #[must_use]
    pub fn resolved_boundary(&self, v: Value) -> Option<usize> {
        let idx = self.find_piece_for_value(v)?;
        let p = &self.pieces[idx];
        match p.lo {
            Some(lo) if v <= lo => Some(p.start),
            _ => {
                // A value beyond the last piece's (known) upper bound starts
                // after the end of the column.
                if idx == self.pieces.len() - 1 {
                    if let Some(hi) = p.hi {
                        if v >= hi {
                            return Some(p.end);
                        }
                    }
                }
                None
            }
        }
    }

    /// Grows the covered range by `extra` positions, extending the last
    /// piece (or creating one for a previously empty index). Used when
    /// pending inserts are merged into the cracker column.
    pub fn grow(&mut self, extra: usize) {
        if extra == 0 {
            return;
        }
        let new_len = self.len + extra;
        if let Some(last) = self.pieces.last_mut() {
            last.end = new_len;
            // The appended values may violate the last piece's bounds; the
            // caller (ripple insertion) is responsible for placing values in
            // admissible pieces, so bounds stay as they are. The cached sum
            // and prefix, however, no longer cover the piece's extent —
            // invalidate them (ripple insertion restores/patches them once
            // the appended value has been rippled into its target piece).
            last.sum = None;
            last.prefix = None;
        } else {
            self.pieces.push(Piece::unbounded(0, new_len));
        }
        self.len = new_len;
    }

    /// Shrinks the covered range by `removed` positions from the end,
    /// shrinking (and possibly removing) trailing pieces. Used when pending
    /// deletes are merged.
    pub fn shrink(&mut self, removed: usize) {
        let new_len = self.len.saturating_sub(removed);
        while let Some(last) = self.pieces.last_mut() {
            if last.start >= new_len {
                self.pieces.pop();
            } else {
                if last.end != new_len {
                    // Truncation drops values the cached sum still counts.
                    // A prefix-sum array survives: the surviving positions'
                    // entries are untouched by dropping the tail, so the
                    // truncated piece keeps the array — and re-derives its
                    // sum from it instead of losing the cache.
                    last.end = new_len;
                    last.sum = last
                        .prefix
                        .as_ref()
                        .filter(|p| p.covers(&(last.start..new_len)))
                        .map(|p| p.sum_range(last.start..new_len));
                }
                break;
            }
        }
        self.len = new_len;
    }

    /// (Internal) direct access to the piece table for the ripple
    /// insert/delete algorithms in the updates module.
    pub(crate) fn pieces_mut(&mut self) -> &mut Vec<Piece> {
        &mut self.pieces
    }

    /// Removes empty pieces (produced by ripple deletion) while keeping the
    /// remaining pieces contiguous.
    pub(crate) fn drop_empty_pieces(&mut self) {
        self.pieces.retain(|p| !p.is_empty());
        if self.pieces.is_empty() && self.len > 0 {
            self.pieces.push(Piece::unbounded(0, self.len));
        }
    }

    /// (Internal) overrides the covered length after the updates module has
    /// adjusted piece extents directly.
    pub(crate) fn set_len(&mut self, len: usize) {
        self.len = len;
        if len == 0 {
            self.pieces.clear();
        }
    }

    /// Checks all structural invariants against the cracked data.
    #[must_use]
    pub fn validate(&self, data: &[Value]) -> bool {
        if data.len() != self.len {
            return false;
        }
        if self.pieces.is_empty() {
            return self.len == 0;
        }
        if self.pieces[0].start != 0 || self.pieces.last().is_none_or(|p| p.end != self.len) {
            return false;
        }
        for w in self.pieces.windows(2) {
            if w[0].end != w[1].start {
                return false;
            }
            if let (Some(hi), Some(lo)) = (w[0].hi, w[1].lo) {
                if hi > lo {
                    return false;
                }
            }
        }
        self.pieces
            .iter()
            .all(|p| !p.is_empty() && p.validate(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_index_single_unbounded_piece() {
        let idx = PieceIndex::new(10);
        assert_eq!(idx.len(), 10);
        assert_eq!(idx.piece_count(), 1);
        assert_eq!(idx.avg_piece_len(), 10.0);
        assert_eq!(idx.max_piece_len(), 10);
        assert!(!idx.is_empty());
        let data = vec![5; 10];
        assert!(idx.validate(&data));
    }

    #[test]
    fn empty_index_has_no_pieces() {
        let idx = PieceIndex::new(0);
        assert!(idx.is_empty());
        assert_eq!(idx.piece_count(), 0);
        assert_eq!(idx.find_piece_for_value(5), None);
        assert_eq!(idx.find_piece_for_position(0), None);
        assert!(idx.validate(&[]));
    }

    #[test]
    fn split_creates_pieces_with_bounds() {
        // data conceptually cracked at 50: [10, 20, 30 | 60, 70]
        let mut idx = PieceIndex::new(5);
        assert!(idx.split(0, 3, 50));
        assert_eq!(idx.piece_count(), 2);
        let p0 = idx.piece(0);
        let p1 = idx.piece(1);
        assert_eq!((p0.start, p0.end, p0.lo, p0.hi), (0, 3, None, Some(50)));
        assert_eq!((p1.start, p1.end, p1.lo, p1.hi), (3, 5, Some(50), None));
        let data = vec![10, 20, 30, 60, 70];
        assert!(idx.validate(&data));
    }

    #[test]
    fn split_at_edges_tightens_bounds_without_new_piece() {
        let mut idx = PieceIndex::new(4);
        // Everything >= 5: split position == start
        assert!(!idx.split(0, 0, 5));
        assert_eq!(idx.piece_count(), 1);
        assert_eq!(idx.piece(0).lo, Some(5));
        // Everything < 100: split position == end
        assert!(!idx.split(0, 4, 100));
        assert_eq!(idx.piece_count(), 1);
        assert_eq!(idx.piece(0).hi, Some(100));
        // Bounds only ever tighten.
        assert!(!idx.split(0, 0, 3));
        assert_eq!(idx.piece(0).lo, Some(5));
        assert!(!idx.split(0, 4, 200));
        assert_eq!(idx.piece(0).hi, Some(100));
    }

    #[test]
    fn find_piece_for_value_uses_bounds() {
        let mut idx = PieceIndex::new(10);
        idx.split(0, 4, 100);
        idx.split(1, 7, 200);
        // pieces: [0,4) <100, [4,7) [100,200), [7,10) >=200
        assert_eq!(idx.find_piece_for_value(50), Some(0));
        assert_eq!(idx.find_piece_for_value(100), Some(1));
        assert_eq!(idx.find_piece_for_value(150), Some(1));
        assert_eq!(idx.find_piece_for_value(200), Some(2));
        assert_eq!(idx.find_piece_for_value(10_000), Some(2));
        assert_eq!(idx.find_piece_for_value(-5), Some(0));
    }

    #[test]
    fn find_piece_for_position_walks_extents() {
        let mut idx = PieceIndex::new(10);
        idx.split(0, 4, 100);
        assert_eq!(idx.find_piece_for_position(0), Some(0));
        assert_eq!(idx.find_piece_for_position(3), Some(0));
        assert_eq!(idx.find_piece_for_position(4), Some(1));
        assert_eq!(idx.find_piece_for_position(9), Some(1));
        assert_eq!(idx.find_piece_for_position(10), None);
    }

    #[test]
    fn resolved_boundary_detects_known_pivots() {
        let mut idx = PieceIndex::new(10);
        assert_eq!(idx.resolved_boundary(100), None);
        idx.split(0, 4, 100);
        assert_eq!(idx.resolved_boundary(100), Some(4));
        assert_eq!(idx.resolved_boundary(50), None);
        // Smaller than every known bound of piece 0? piece 0 has lo None, so unknown.
        assert_eq!(idx.resolved_boundary(-5), None);
        // Beyond the last piece's known upper bound.
        idx.split(1, 10, 500);
        assert_eq!(idx.resolved_boundary(600), Some(10));
    }

    #[test]
    fn split_preserves_sorted_flag() {
        let mut idx = PieceIndex::new(6);
        // mark the single piece sorted
        let mut p = idx.piece(0);
        p.sorted = true;
        idx = PieceIndex {
            pieces: vec![p],
            len: 6,
        };
        idx.split(0, 3, 10);
        assert!(idx.piece(0).sorted);
        assert!(idx.piece(1).sorted);
    }

    #[test]
    fn grow_and_shrink_adjust_extents() {
        let mut idx = PieceIndex::new(5);
        idx.split(0, 2, 10);
        idx.grow(3);
        assert_eq!(idx.len(), 8);
        assert_eq!(idx.piece(idx.piece_count() - 1).end, 8);
        idx.shrink(4);
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.piece_count(), 2);
        assert_eq!(idx.piece(1).end, 4);
        // shrinking past a whole piece removes it
        idx.shrink(3);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.piece_count(), 1);
    }

    #[test]
    fn grow_on_empty_index_creates_piece() {
        let mut idx = PieceIndex::new(0);
        idx.grow(4);
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.piece_count(), 1);
    }

    #[test]
    fn validate_rejects_inconsistent_indexes() {
        let mut idx = PieceIndex::new(5);
        idx.split(0, 3, 50);
        let data_ok = vec![10, 20, 30, 60, 70];
        let data_bad = vec![10, 20, 99, 60, 70];
        assert!(idx.validate(&data_ok));
        assert!(!idx.validate(&data_bad));
        assert!(!idx.validate(&data_ok[..4]));
    }

    #[test]
    #[should_panic(expected = "outside piece")]
    fn split_outside_piece_panics() {
        let mut idx = PieceIndex::new(5);
        idx.split(0, 3, 50);
        idx.split(0, 4, 20);
    }

    #[test]
    fn split_multi_matches_sequential_splits() {
        // data conceptually: [10, 20, 30, 60, 70, 90]
        let data = vec![10, 20, 30, 60, 70, 90];
        let splits = [(2usize, 25i64), (3, 50), (5, 80)];
        let mut batched = PieceIndex::new(6);
        assert_eq!(batched.split_multi(0, &splits), 3);
        let mut sequential = PieceIndex::new(6);
        // Sequential application must target the piece holding each value.
        for &(pos, pivot) in &splits {
            let i = sequential.find_piece_for_value(pivot).unwrap();
            sequential.split(i, pos, pivot);
        }
        assert_eq!(batched, sequential);
        assert!(batched.validate(&data));
        assert_eq!(batched.piece_count(), 4);
    }

    #[test]
    fn split_multi_edge_splits_tighten_bounds() {
        // All values >= 5 and < 100: both splits land on the edges.
        let mut idx = PieceIndex::new(4);
        assert_eq!(idx.split_multi(0, &[(0, 5), (4, 100)]), 0);
        assert_eq!(idx.piece_count(), 1);
        assert_eq!(idx.piece(0).lo, Some(5));
        assert_eq!(idx.piece(0).hi, Some(100));
        // Bounds only ever tighten; with increasing pivots at the end, the
        // smallest end-pivot wins.
        assert_eq!(idx.split_multi(0, &[(0, 3), (4, 60), (4, 200)]), 0);
        assert_eq!(idx.piece(0).lo, Some(5));
        assert_eq!(idx.piece(0).hi, Some(60));
    }

    #[test]
    fn split_multi_same_position_different_pivots() {
        // data conceptually: [10, 20 | 60, 70]; pivots 30 and 50 both
        // resolve to position 2 — one piece boundary, tightest lo bound.
        let data = vec![10, 20, 60, 70];
        let mut idx = PieceIndex::new(4);
        assert_eq!(idx.split_multi(0, &[(2, 30), (2, 50)]), 1);
        assert_eq!(idx.piece_count(), 2);
        assert_eq!(idx.piece(0).hi, Some(30));
        assert_eq!(idx.piece(1).lo, Some(50));
        assert!(idx.validate(&data));
    }

    #[test]
    fn split_multi_empty_is_noop() {
        let mut idx = PieceIndex::new(5);
        assert_eq!(idx.split_multi(0, &[]), 0);
        assert_eq!(idx.piece_count(), 1);
    }

    #[test]
    fn split_multi_preserves_sorted_flag() {
        let mut idx = PieceIndex::new_sorted(6);
        assert_eq!(idx.split_multi(0, &[(2, 10), (4, 20)]), 2);
        assert!(idx.pieces().iter().all(|p| p.sorted));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn split_multi_rejects_unordered_pivots() {
        let mut idx = PieceIndex::new(5);
        idx.split_multi(0, &[(1, 50), (2, 40)]);
    }

    #[test]
    fn split_with_sums_caches_both_sides() {
        // data conceptually cracked at 50: [10, 20, 30 | 60, 70]
        let data = vec![10, 20, 30, 60, 70];
        let mut idx = PieceIndex::new(5);
        assert!(idx.split_with_sums(0, 3, 50, 60, 190));
        assert_eq!(idx.piece(0).sum, Some(60));
        assert_eq!(idx.piece(1).sum, Some(130));
        assert!(idx.validate(&data));
        // A plain split leaves the new pieces' sums unknown.
        let mut plain = PieceIndex::new(5);
        plain.split(0, 3, 50);
        assert_eq!(plain.piece(0).sum, None);
        assert_eq!(plain.piece(1).sum, None);
    }

    #[test]
    fn split_multi_with_sums_accumulates_segments() {
        // data conceptually: [10, 20 | 30 | 60, 70 | 90]
        let data = vec![10, 20, 30, 60, 70, 90];
        let splits = [(2usize, 25i64), (3, 50), (5, 80)];
        let seg_sums = [30i128, 30, 130, 90];
        let mut idx = PieceIndex::new(6);
        assert_eq!(idx.split_multi_with_sums(0, &splits, Some(&seg_sums)), 3);
        let sums: Vec<Option<i128>> = idx.pieces().iter().map(|p| p.sum).collect();
        assert_eq!(sums, vec![Some(30), Some(30), Some(130), Some(90)]);
        assert!(idx.validate(&data));
    }

    #[test]
    fn split_multi_with_sums_edge_splits_fold_into_survivor() {
        // Both splits land on the edges: one piece survives, and the fused
        // pass still teaches it its total sum.
        let data = vec![10, 20, 30, 40];
        let mut idx = PieceIndex::new(4);
        assert_eq!(
            idx.split_multi_with_sums(0, &[(0, 5), (4, 100)], Some(&[0, 100, 0])),
            0
        );
        assert_eq!(idx.piece_count(), 1);
        assert_eq!(idx.piece(0).sum, Some(100));
        assert!(idx.validate(&data));
        // Duplicate positions: the empty middle segment contributes zero.
        let data = vec![10, 20, 60, 70];
        let mut idx = PieceIndex::new(4);
        assert_eq!(
            idx.split_multi_with_sums(0, &[(2, 30), (2, 50)], Some(&[30, 0, 130])),
            1
        );
        assert_eq!(idx.piece(0).sum, Some(30));
        assert_eq!(idx.piece(1).sum, Some(130));
        assert!(idx.validate(&data));
    }

    #[test]
    fn tightening_without_sums_keeps_existing_cache() {
        let data = vec![10, 20, 30, 40];
        let mut idx = PieceIndex::new(4);
        idx.split_multi_with_sums(0, &[(0, 5)], Some(&[0, 100]));
        assert_eq!(idx.piece(0).sum, Some(100));
        // A later sum-less tightening must not drop the trusted cache.
        assert!(!idx.split(0, 4, 200));
        assert_eq!(idx.piece(0).sum, Some(100));
        // But a sum-less *interior* split invalidates (contents unknown).
        assert!(idx.split(0, 2, 25));
        assert_eq!(idx.piece(0).sum, None);
        assert_eq!(idx.piece(1).sum, None);
        assert!(idx.validate(&data));
    }

    #[test]
    fn split_grouped_with_sums_mixes_summed_and_unsummed_groups() {
        // data conceptually: [10, 20 | 60, 70] then both pieces split again.
        let data = vec![10, 20, 60, 70];
        let mut idx = PieceIndex::new(4);
        idx.split_with_sums(0, 2, 50, 30, 160);
        let created = idx.split_grouped_with_sums(&[
            (0, vec![(1, 15)], Some(vec![10, 20])),
            (1, vec![(3, 65)], None),
        ]);
        assert_eq!(created, 2);
        let sums: Vec<Option<i128>> = idx.pieces().iter().map(|p| p.sum).collect();
        assert_eq!(sums, vec![Some(10), Some(20), None, None]);
        assert!(idx.validate(&data));
    }

    #[test]
    fn sorted_splits_share_the_prefix_and_unsorted_splits_drop_it() {
        use holistic_storage::PrefixSums;
        use std::sync::Arc;

        let data = vec![10, 20, 30, 60, 70, 90];
        let mut idx = PieceIndex::new_sorted(6);
        let prefix = Arc::new(PrefixSums::build(0, &data));
        idx.pieces_mut()[0].prefix = Some(Arc::clone(&prefix));
        idx.split_multi(0, &[(3, 50), (5, 80)]);
        assert_eq!(idx.piece_count(), 3);
        for (i, p) in idx.pieces().iter().enumerate() {
            assert!(p.sorted, "piece {i}");
            let shared = p.prefix.as_ref().expect("inherited");
            assert!(Arc::ptr_eq(shared, &prefix), "piece {i} shares the array");
            assert!(p.covering_prefix().is_some());
        }
        assert!(idx.validate(&data));

        // An unsorted piece never hands a prefix down (its data was just
        // permuted by the kernel pass that produced the splits).
        let mut unsorted = PieceIndex::new(6);
        unsorted.pieces_mut()[0].prefix = Some(Arc::clone(&prefix));
        unsorted.split(0, 3, 50);
        assert!(unsorted.pieces().iter().all(|p| p.prefix.is_none()));
    }

    #[test]
    fn grow_drops_the_prefix_and_shrink_keeps_it() {
        use holistic_storage::PrefixSums;
        use std::sync::Arc;

        let data = vec![10, 20, 30, 60];
        let mut idx = PieceIndex::new_sorted(4);
        idx.pieces_mut()[0].prefix = Some(Arc::new(PrefixSums::build(0, &data)));
        idx.pieces_mut()[0].sum = Some(120);
        idx.grow(1);
        assert!(idx.piece(0).prefix.is_none(), "grow extends past the array");
        assert_eq!(idx.piece(0).sum, None);

        // Truncation keeps a covering prefix and re-derives the sum.
        let mut idx = PieceIndex::new_sorted(4);
        idx.pieces_mut()[0].prefix = Some(Arc::new(PrefixSums::build(0, &data)));
        idx.pieces_mut()[0].sum = Some(120);
        idx.shrink(1);
        assert!(idx.piece(0).prefix.is_some());
        assert_eq!(idx.piece(0).sum, Some(60));
        assert!(idx.validate(&data[..3]));
    }

    #[test]
    fn grow_and_shrink_invalidate_affected_sums() {
        let data = vec![10, 20, 60, 70];
        let mut idx = PieceIndex::new(4);
        idx.split_with_sums(0, 2, 50, 30, 160);
        assert_eq!(idx.piece(1).sum, Some(130));
        idx.grow(1);
        // Only the extended (last) piece loses its cache.
        assert_eq!(idx.piece(0).sum, Some(30));
        assert_eq!(idx.piece(1).sum, None);
        idx.shrink(1);
        assert_eq!(idx.piece(0).sum, Some(30));
        assert!(idx.validate(&data));
        // Truncating into a piece with a cached sum drops the cache.
        idx.shrink(1);
        assert_eq!(idx.piece(1).sum, None);
        // Shrinking a whole piece away leaves earlier caches untouched.
        idx.shrink(1);
        assert_eq!(idx.piece_count(), 1);
        assert_eq!(idx.piece(0).sum, Some(30));
    }
}
