//! The cracker index: an ordered table of [`Piece`]s describing how far a
//! cracker column has been partitioned.
//!
//! MonetDB implements this as an AVL tree keyed on crack values; an ordered
//! vector of pieces provides the same O(log P) lookup (P = number of pieces)
//! with better cache behaviour and much simpler invariants, at the cost of
//! O(P) splits — irrelevant in practice because P is small compared to the
//! column (cracking stops paying off once pieces fit in the CPU cache, as
//! the paper's cost model observes).

use crate::piece::Piece;
use crate::Value;

/// The cracker index: an ordered, contiguous list of pieces covering
/// positions `[0, len)` of a cracker column.
///
/// Invariants (checked by [`PieceIndex::validate`]):
/// * pieces are contiguous and cover exactly `[0, len)`;
/// * pieces are non-empty (unless the column itself is empty);
/// * value bounds are consistent: `pieces[i].hi == pieces[i+1].lo`
///   whenever both are known, the first piece has `lo = None` or a bound
///   that under-approximates the minimum, and bounds never contradict the
///   data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PieceIndex {
    pieces: Vec<Piece>,
    len: usize,
}

impl PieceIndex {
    /// Creates an index with a single unbounded piece covering `[0, len)`.
    #[must_use]
    pub fn new(len: usize) -> Self {
        let pieces = if len == 0 {
            Vec::new()
        } else {
            vec![Piece::unbounded(0, len)]
        };
        PieceIndex { pieces, len }
    }

    /// Creates an index with a single piece covering `[0, len)` that is
    /// flagged as fully sorted. Used after a full (offline) sort, so
    /// subsequent selects resolve boundaries with binary search instead of
    /// data movement.
    #[must_use]
    pub fn new_sorted(len: usize) -> Self {
        let pieces = if len == 0 {
            Vec::new()
        } else {
            vec![Piece {
                start: 0,
                end: len,
                lo: None,
                hi: None,
                sorted: true,
            }]
        };
        PieceIndex { pieces, len }
    }

    /// Number of positions covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the indexed column is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pieces.
    #[must_use]
    pub fn piece_count(&self) -> usize {
        self.pieces.len()
    }

    /// All pieces, in positional (== value) order.
    #[must_use]
    pub fn pieces(&self) -> &[Piece] {
        &self.pieces
    }

    /// The piece at index `idx`.
    #[must_use]
    pub fn piece(&self, idx: usize) -> Piece {
        self.pieces[idx]
    }

    /// Average piece length (`len / piece_count`), or 0 for an empty column.
    #[must_use]
    pub fn avg_piece_len(&self) -> f64 {
        if self.pieces.is_empty() {
            0.0
        } else {
            self.len as f64 / self.pieces.len() as f64
        }
    }

    /// Length of the largest piece, or 0 for an empty column.
    #[must_use]
    pub fn max_piece_len(&self) -> usize {
        self.pieces.iter().map(Piece::len).max().unwrap_or(0)
    }

    /// Index of the piece that would hold value `v`.
    ///
    /// Returns the first piece whose exclusive upper bound is greater than
    /// `v` (the last piece for values beyond every bound). For an empty
    /// column there is no piece and `None` is returned.
    #[must_use]
    pub fn find_piece_for_value(&self, v: Value) -> Option<usize> {
        if self.pieces.is_empty() {
            return None;
        }
        let idx = self
            .pieces
            .partition_point(|p| p.hi.is_some_and(|hi| hi <= v));
        Some(idx.min(self.pieces.len() - 1))
    }

    /// Index of the piece containing position `pos`.
    #[must_use]
    pub fn find_piece_for_position(&self, pos: usize) -> Option<usize> {
        if pos >= self.len {
            return None;
        }
        let idx = self.pieces.partition_point(|p| p.end <= pos);
        Some(idx)
    }

    /// Records a crack of piece `idx` at absolute position `split_pos` with
    /// pivot value `pivot`: positions `[start, split_pos)` hold values
    /// `< pivot`, positions `[split_pos, end)` hold values `>= pivot`.
    ///
    /// If the split lands on the piece's start or end, no new piece is
    /// created; the existing piece's value bound is tightened instead, which
    /// still records the knowledge that `pivot` is a resolved boundary.
    ///
    /// Returns `true` if a new piece was created.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds or `split_pos` lies outside the piece.
    pub fn split(&mut self, idx: usize, split_pos: usize, pivot: Value) -> bool {
        self.split_multi(idx, &[(split_pos, pivot)]) == 1
    }

    /// Records all splits of one multi-pivot partitioning pass over piece
    /// `idx` in a single piece-table edit.
    ///
    /// `splits` are `(split_pos, pivot)` pairs — each with the same meaning
    /// as [`PieceIndex::split`] — ordered by position, with strictly
    /// increasing pivots. Splits landing on the piece's start or end tighten
    /// its value bounds; interior splits carve the piece into sub-pieces.
    /// The whole edit is applied with one `Vec::splice`, so the piece table's
    /// tail is shifted once per pass instead of once per split (the former
    /// O(pieces) `Vec::insert` per crack).
    ///
    /// Returns the number of new pieces created.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds, any split position lies outside the
    /// piece, positions decrease, or pivots are not strictly increasing.
    pub fn split_multi(&mut self, idx: usize, splits: &[(usize, Value)]) -> usize {
        if splits.is_empty() {
            return 0;
        }
        let p = self.pieces[idx];
        let mut replacement: Vec<Piece> = Vec::with_capacity(splits.len() + 1);
        Self::expand_piece(p, splits, &mut replacement);
        let created = replacement.len() - 1;
        if created == 0 {
            // Pure bound tightening: no table surgery needed.
            self.pieces[idx] = replacement[0];
        } else {
            self.pieces.reserve(created);
            self.pieces.splice(idx..=idx, replacement);
        }
        created
    }

    /// Records the splits of a whole batch pass over *many* pieces in a
    /// single piece-table rebuild.
    ///
    /// `groups` pairs each affected piece index with the splits produced
    /// inside that piece (same contract as [`PieceIndex::split_multi`]),
    /// strictly ascending by piece index. The table is rebuilt once in
    /// `O(P + k)`, instead of the `O(P)` tail shift per affected piece that
    /// repeated `split_multi` calls would pay — on a heavily cracked column
    /// that repeated shifting dominates the index-maintenance cost of a
    /// large batch.
    ///
    /// Returns the total number of new pieces created.
    ///
    /// # Panics
    ///
    /// Panics under the per-piece conditions of [`PieceIndex::split_multi`],
    /// or if `groups` is not strictly ascending by piece index.
    pub fn split_grouped(&mut self, groups: &[(usize, Vec<(usize, Value)>)]) -> usize {
        if groups.is_empty() {
            return 0;
        }
        assert!(
            groups.windows(2).all(|w| w[0].0 < w[1].0),
            "groups must be strictly ascending by piece index"
        );
        let total_splits: usize = groups.iter().map(|(_, s)| s.len()).sum();
        let mut rebuilt: Vec<Piece> = Vec::with_capacity(self.pieces.len() + total_splits);
        let mut next_group = groups.iter().peekable();
        for (idx, &p) in self.pieces.iter().enumerate() {
            match next_group.peek() {
                Some((group_idx, splits)) if *group_idx == idx => {
                    Self::expand_piece(p, splits, &mut rebuilt);
                    next_group.next();
                }
                _ => rebuilt.push(p),
            }
        }
        assert!(
            next_group.peek().is_none(),
            "group piece index out of bounds"
        );
        let created = rebuilt.len() - self.pieces.len();
        self.pieces = rebuilt;
        created
    }

    /// Expands one piece into the pieces its splits produce, pushing them
    /// onto `out` (shared by [`PieceIndex::split_multi`] and
    /// [`PieceIndex::split_grouped`]). Pushes the piece unchanged (modulo
    /// bound tightening) when no interior split exists; `splits` must be
    /// non-empty.
    fn expand_piece(p: Piece, splits: &[(usize, Value)], out: &mut Vec<Piece>) {
        assert!(
            splits
                .windows(2)
                .all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1),
            "splits must have non-decreasing positions and strictly increasing pivots"
        );
        for &(split_pos, _) in splits {
            assert!(
                split_pos >= p.start && split_pos <= p.end,
                "split position {split_pos} outside piece [{}, {})",
                p.start,
                p.end
            );
        }
        // Walk the splits left to right. `cur_start`/`cur_lo` describe the
        // sub-piece currently open on the left; `end_hi` collects
        // upper-bound tightenings from splits that land on the piece's end
        // (the smallest such pivot wins).
        let mut cur_start = p.start;
        let mut cur_lo = p.lo;
        let mut end_hi = p.hi;
        for &(split_pos, pivot) in splits {
            if split_pos == cur_start {
                // Empty left side: every remaining value is >= pivot.
                cur_lo = Some(cur_lo.map_or(pivot, |lo| lo.max(pivot)));
            } else if split_pos == p.end {
                // Every remaining value is < pivot. Pivots increase, so the
                // first end-split carries the tightest bound.
                end_hi = Some(end_hi.map_or(pivot, |hi| hi.min(pivot)));
            } else {
                out.push(Piece {
                    start: cur_start,
                    end: split_pos,
                    lo: cur_lo,
                    hi: Some(pivot),
                    sorted: p.sorted,
                });
                cur_start = split_pos;
                cur_lo = Some(pivot);
            }
        }
        out.push(Piece {
            start: cur_start,
            end: p.end,
            lo: cur_lo,
            hi: end_hi,
            sorted: p.sorted,
        });
    }

    /// Returns the resolved boundary position for value `v`, if the index
    /// already knows where values `>= v` begin without any data movement.
    #[must_use]
    pub fn resolved_boundary(&self, v: Value) -> Option<usize> {
        let idx = self.find_piece_for_value(v)?;
        let p = self.pieces[idx];
        match p.lo {
            Some(lo) if v <= lo => Some(p.start),
            _ => {
                // A value beyond the last piece's (known) upper bound starts
                // after the end of the column.
                if idx == self.pieces.len() - 1 {
                    if let Some(hi) = p.hi {
                        if v >= hi {
                            return Some(p.end);
                        }
                    }
                }
                None
            }
        }
    }

    /// Grows the covered range by `extra` positions, extending the last
    /// piece (or creating one for a previously empty index). Used when
    /// pending inserts are merged into the cracker column.
    pub fn grow(&mut self, extra: usize) {
        if extra == 0 {
            return;
        }
        let new_len = self.len + extra;
        if let Some(last) = self.pieces.last_mut() {
            last.end = new_len;
            // The appended values may violate the last piece's bounds; the
            // caller (ripple insertion) is responsible for placing values in
            // admissible pieces, so bounds stay as they are.
        } else {
            self.pieces.push(Piece::unbounded(0, new_len));
        }
        self.len = new_len;
    }

    /// Shrinks the covered range by `removed` positions from the end,
    /// shrinking (and possibly removing) trailing pieces. Used when pending
    /// deletes are merged.
    pub fn shrink(&mut self, removed: usize) {
        let new_len = self.len.saturating_sub(removed);
        while let Some(last) = self.pieces.last_mut() {
            if last.start >= new_len {
                self.pieces.pop();
            } else {
                last.end = new_len;
                break;
            }
        }
        self.len = new_len;
    }

    /// (Internal) direct access to the piece table for the ripple
    /// insert/delete algorithms in the updates module.
    pub(crate) fn pieces_mut(&mut self) -> &mut Vec<Piece> {
        &mut self.pieces
    }

    /// Removes empty pieces (produced by ripple deletion) while keeping the
    /// remaining pieces contiguous.
    pub(crate) fn drop_empty_pieces(&mut self) {
        self.pieces.retain(|p| !p.is_empty());
        if self.pieces.is_empty() && self.len > 0 {
            self.pieces.push(Piece::unbounded(0, self.len));
        }
    }

    /// (Internal) overrides the covered length after the updates module has
    /// adjusted piece extents directly.
    pub(crate) fn set_len(&mut self, len: usize) {
        self.len = len;
        if len == 0 {
            self.pieces.clear();
        }
    }

    /// Checks all structural invariants against the cracked data.
    #[must_use]
    pub fn validate(&self, data: &[Value]) -> bool {
        if data.len() != self.len {
            return false;
        }
        if self.pieces.is_empty() {
            return self.len == 0;
        }
        if self.pieces[0].start != 0 || self.pieces.last().expect("non-empty").end != self.len {
            return false;
        }
        for w in self.pieces.windows(2) {
            if w[0].end != w[1].start {
                return false;
            }
            if let (Some(hi), Some(lo)) = (w[0].hi, w[1].lo) {
                if hi > lo {
                    return false;
                }
            }
        }
        self.pieces
            .iter()
            .all(|p| !p.is_empty() && p.validate(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_index_single_unbounded_piece() {
        let idx = PieceIndex::new(10);
        assert_eq!(idx.len(), 10);
        assert_eq!(idx.piece_count(), 1);
        assert_eq!(idx.avg_piece_len(), 10.0);
        assert_eq!(idx.max_piece_len(), 10);
        assert!(!idx.is_empty());
        let data = vec![5; 10];
        assert!(idx.validate(&data));
    }

    #[test]
    fn empty_index_has_no_pieces() {
        let idx = PieceIndex::new(0);
        assert!(idx.is_empty());
        assert_eq!(idx.piece_count(), 0);
        assert_eq!(idx.find_piece_for_value(5), None);
        assert_eq!(idx.find_piece_for_position(0), None);
        assert!(idx.validate(&[]));
    }

    #[test]
    fn split_creates_pieces_with_bounds() {
        // data conceptually cracked at 50: [10, 20, 30 | 60, 70]
        let mut idx = PieceIndex::new(5);
        assert!(idx.split(0, 3, 50));
        assert_eq!(idx.piece_count(), 2);
        let p0 = idx.piece(0);
        let p1 = idx.piece(1);
        assert_eq!((p0.start, p0.end, p0.lo, p0.hi), (0, 3, None, Some(50)));
        assert_eq!((p1.start, p1.end, p1.lo, p1.hi), (3, 5, Some(50), None));
        let data = vec![10, 20, 30, 60, 70];
        assert!(idx.validate(&data));
    }

    #[test]
    fn split_at_edges_tightens_bounds_without_new_piece() {
        let mut idx = PieceIndex::new(4);
        // Everything >= 5: split position == start
        assert!(!idx.split(0, 0, 5));
        assert_eq!(idx.piece_count(), 1);
        assert_eq!(idx.piece(0).lo, Some(5));
        // Everything < 100: split position == end
        assert!(!idx.split(0, 4, 100));
        assert_eq!(idx.piece_count(), 1);
        assert_eq!(idx.piece(0).hi, Some(100));
        // Bounds only ever tighten.
        assert!(!idx.split(0, 0, 3));
        assert_eq!(idx.piece(0).lo, Some(5));
        assert!(!idx.split(0, 4, 200));
        assert_eq!(idx.piece(0).hi, Some(100));
    }

    #[test]
    fn find_piece_for_value_uses_bounds() {
        let mut idx = PieceIndex::new(10);
        idx.split(0, 4, 100);
        idx.split(1, 7, 200);
        // pieces: [0,4) <100, [4,7) [100,200), [7,10) >=200
        assert_eq!(idx.find_piece_for_value(50), Some(0));
        assert_eq!(idx.find_piece_for_value(100), Some(1));
        assert_eq!(idx.find_piece_for_value(150), Some(1));
        assert_eq!(idx.find_piece_for_value(200), Some(2));
        assert_eq!(idx.find_piece_for_value(10_000), Some(2));
        assert_eq!(idx.find_piece_for_value(-5), Some(0));
    }

    #[test]
    fn find_piece_for_position_walks_extents() {
        let mut idx = PieceIndex::new(10);
        idx.split(0, 4, 100);
        assert_eq!(idx.find_piece_for_position(0), Some(0));
        assert_eq!(idx.find_piece_for_position(3), Some(0));
        assert_eq!(idx.find_piece_for_position(4), Some(1));
        assert_eq!(idx.find_piece_for_position(9), Some(1));
        assert_eq!(idx.find_piece_for_position(10), None);
    }

    #[test]
    fn resolved_boundary_detects_known_pivots() {
        let mut idx = PieceIndex::new(10);
        assert_eq!(idx.resolved_boundary(100), None);
        idx.split(0, 4, 100);
        assert_eq!(idx.resolved_boundary(100), Some(4));
        assert_eq!(idx.resolved_boundary(50), None);
        // Smaller than every known bound of piece 0? piece 0 has lo None, so unknown.
        assert_eq!(idx.resolved_boundary(-5), None);
        // Beyond the last piece's known upper bound.
        idx.split(1, 10, 500);
        assert_eq!(idx.resolved_boundary(600), Some(10));
    }

    #[test]
    fn split_preserves_sorted_flag() {
        let mut idx = PieceIndex::new(6);
        // mark the single piece sorted
        let mut p = idx.piece(0);
        p.sorted = true;
        idx = PieceIndex {
            pieces: vec![p],
            len: 6,
        };
        idx.split(0, 3, 10);
        assert!(idx.piece(0).sorted);
        assert!(idx.piece(1).sorted);
    }

    #[test]
    fn grow_and_shrink_adjust_extents() {
        let mut idx = PieceIndex::new(5);
        idx.split(0, 2, 10);
        idx.grow(3);
        assert_eq!(idx.len(), 8);
        assert_eq!(idx.piece(idx.piece_count() - 1).end, 8);
        idx.shrink(4);
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.piece_count(), 2);
        assert_eq!(idx.piece(1).end, 4);
        // shrinking past a whole piece removes it
        idx.shrink(3);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.piece_count(), 1);
    }

    #[test]
    fn grow_on_empty_index_creates_piece() {
        let mut idx = PieceIndex::new(0);
        idx.grow(4);
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.piece_count(), 1);
    }

    #[test]
    fn validate_rejects_inconsistent_indexes() {
        let mut idx = PieceIndex::new(5);
        idx.split(0, 3, 50);
        let data_ok = vec![10, 20, 30, 60, 70];
        let data_bad = vec![10, 20, 99, 60, 70];
        assert!(idx.validate(&data_ok));
        assert!(!idx.validate(&data_bad));
        assert!(!idx.validate(&data_ok[..4]));
    }

    #[test]
    #[should_panic(expected = "outside piece")]
    fn split_outside_piece_panics() {
        let mut idx = PieceIndex::new(5);
        idx.split(0, 3, 50);
        idx.split(0, 4, 20);
    }

    #[test]
    fn split_multi_matches_sequential_splits() {
        // data conceptually: [10, 20, 30, 60, 70, 90]
        let data = vec![10, 20, 30, 60, 70, 90];
        let splits = [(2usize, 25i64), (3, 50), (5, 80)];
        let mut batched = PieceIndex::new(6);
        assert_eq!(batched.split_multi(0, &splits), 3);
        let mut sequential = PieceIndex::new(6);
        // Sequential application must target the piece holding each value.
        for &(pos, pivot) in &splits {
            let i = sequential.find_piece_for_value(pivot).unwrap();
            sequential.split(i, pos, pivot);
        }
        assert_eq!(batched, sequential);
        assert!(batched.validate(&data));
        assert_eq!(batched.piece_count(), 4);
    }

    #[test]
    fn split_multi_edge_splits_tighten_bounds() {
        // All values >= 5 and < 100: both splits land on the edges.
        let mut idx = PieceIndex::new(4);
        assert_eq!(idx.split_multi(0, &[(0, 5), (4, 100)]), 0);
        assert_eq!(idx.piece_count(), 1);
        assert_eq!(idx.piece(0).lo, Some(5));
        assert_eq!(idx.piece(0).hi, Some(100));
        // Bounds only ever tighten; with increasing pivots at the end, the
        // smallest end-pivot wins.
        assert_eq!(idx.split_multi(0, &[(0, 3), (4, 60), (4, 200)]), 0);
        assert_eq!(idx.piece(0).lo, Some(5));
        assert_eq!(idx.piece(0).hi, Some(60));
    }

    #[test]
    fn split_multi_same_position_different_pivots() {
        // data conceptually: [10, 20 | 60, 70]; pivots 30 and 50 both
        // resolve to position 2 — one piece boundary, tightest lo bound.
        let data = vec![10, 20, 60, 70];
        let mut idx = PieceIndex::new(4);
        assert_eq!(idx.split_multi(0, &[(2, 30), (2, 50)]), 1);
        assert_eq!(idx.piece_count(), 2);
        assert_eq!(idx.piece(0).hi, Some(30));
        assert_eq!(idx.piece(1).lo, Some(50));
        assert!(idx.validate(&data));
    }

    #[test]
    fn split_multi_empty_is_noop() {
        let mut idx = PieceIndex::new(5);
        assert_eq!(idx.split_multi(0, &[]), 0);
        assert_eq!(idx.piece_count(), 1);
    }

    #[test]
    fn split_multi_preserves_sorted_flag() {
        let mut idx = PieceIndex::new_sorted(6);
        assert_eq!(idx.split_multi(0, &[(2, 10), (4, 20)]), 2);
        assert!(idx.pieces().iter().all(|p| p.sorted));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn split_multi_rejects_unordered_pivots() {
        let mut idx = PieceIndex::new(5);
        idx.split_multi(0, &[(1, 50), (2, 40)]);
    }
}
