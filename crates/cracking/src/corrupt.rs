//! Deterministic live corruption injection for learned cracking state.
//!
//! The persistence layer's `FaultInjector` proves the *recovery* path by
//! killing IO at every operation index; this module is its runtime twin.
//! A [`CorruptionInjector`] counts engine operations and can be *armed* to
//! fire exactly once at a chosen index, flipping one field of a cracker
//! column's learned metadata — a cached piece sum, a prefix-sum entry, or
//! a piece boundary — or panicking mid-operation. The integrity sweep in
//! `holistic-core` arms every index in turn and proves that each injected
//! fault is detected (by a paranoia check or the background scrubber),
//! that the column heals to a state equivalent to the reference model,
//! and that no query ever returns a wrong answer in between.
//!
//! Corruption only ever touches *derived* state. The base data array and
//! row ids are never modified, so the engine's base-storage scan path —
//! the quarantine fallback — always stays correct.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use holistic_storage::PrefixSums;

use crate::cracker::CrackerColumn;

/// The classes of learned-state damage the injector can inflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// XOR a cached piece sum (`Piece::sum`) — the aggregate cache lies.
    SumFlip,
    /// XOR one interior entry of a piece's prefix-sum array — the
    /// zero-read sorted path lies.
    PrefixFlip,
    /// Tighten a piece's value bound past a value it holds — the piece
    /// table misroutes predicates.
    BoundaryFlip,
    /// Panic mid-operation, modeling a kernel bug instead of bad
    /// metadata; the containment boundary must convert it into a
    /// quarantine.
    Panic,
}

impl std::fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CorruptionKind::SumFlip => "sum-flip",
            CorruptionKind::PrefixFlip => "prefix-flip",
            CorruptionKind::BoundaryFlip => "boundary-flip",
            CorruptionKind::Panic => "panic",
        })
    }
}

const DISARMED: u64 = u64::MAX;

const KIND_SUM: u8 = 0;
const KIND_PREFIX: u8 = 1;
const KIND_BOUNDARY: u8 = 2;
const KIND_PANIC: u8 = 3;

fn kind_to_u8(kind: CorruptionKind) -> u8 {
    match kind {
        CorruptionKind::SumFlip => KIND_SUM,
        CorruptionKind::PrefixFlip => KIND_PREFIX,
        CorruptionKind::BoundaryFlip => KIND_BOUNDARY,
        CorruptionKind::Panic => KIND_PANIC,
    }
}

fn kind_from_u8(raw: u8) -> CorruptionKind {
    match raw {
        KIND_PREFIX => CorruptionKind::PrefixFlip,
        KIND_BOUNDARY => CorruptionKind::BoundaryFlip,
        KIND_PANIC => CorruptionKind::Panic,
        _ => CorruptionKind::SumFlip,
    }
}

/// Deterministic one-shot corruption injector (see module docs).
///
/// Disarmed (the default) it only counts operations, which is what makes
/// sweeps exhaustive: run a workload once disarmed to learn its operation
/// count, then re-run it once per index with the injector armed there.
#[derive(Debug)]
pub struct CorruptionInjector {
    ops: AtomicU64,
    fire_at: AtomicU64,
    kind: AtomicU8,
}

impl CorruptionInjector {
    /// Creates a disarmed injector.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(CorruptionInjector {
            ops: AtomicU64::new(0),
            fire_at: AtomicU64::new(DISARMED),
            kind: AtomicU8::new(KIND_SUM),
        })
    }

    /// Schedules `kind` to fire at global operation index `index`
    /// (0-based, counted from construction or the last
    /// [`CorruptionInjector::reset`]). Unlike the persistence fault
    /// injector, corruption fires exactly once: operations after the
    /// armed one proceed normally, so the sweep can watch the damaged
    /// engine keep answering while it heals.
    pub fn arm(&self, index: u64, kind: CorruptionKind) {
        self.kind.store(kind_to_u8(kind), Ordering::SeqCst);
        self.fire_at.store(index, Ordering::SeqCst);
    }

    /// Cancels any scheduled corruption.
    pub fn disarm(&self) {
        self.fire_at.store(DISARMED, Ordering::SeqCst);
    }

    /// Resets the operation counter (and disarms).
    pub fn reset(&self) {
        self.disarm();
        self.ops.store(0, Ordering::SeqCst);
    }

    /// Operations ticked so far.
    #[must_use]
    pub fn ops_performed(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Ticks one operation past the injector. Returns the armed kind if
    /// this is exactly the armed index (one-shot), `None` otherwise.
    pub fn tick(&self) -> Option<CorruptionKind> {
        let idx = self.ops.fetch_add(1, Ordering::SeqCst);
        if idx == self.fire_at.load(Ordering::SeqCst) {
            Some(kind_from_u8(self.kind.load(Ordering::SeqCst)))
        } else {
            None
        }
    }
}

/// Applies `kind` to the column's learned metadata, returning whether a
/// field was actually flipped (`false` when the column has no flippable
/// target, e.g. no cached sums for [`CorruptionKind::SumFlip`]).
///
/// Every flip is constructed to be *detectable*: the damaged field
/// contradicts the (untouched) data array, so `CrackerColumn::validate`
/// — and therefore any paranoia check or scrub step covering the piece —
/// must fail afterwards.
///
/// # Panics
/// [`CorruptionKind::Panic`] panics unconditionally; the caller's
/// containment boundary is expected to catch it.
pub fn corrupt_column(col: &mut CrackerColumn, kind: CorruptionKind) -> bool {
    if matches!(kind, CorruptionKind::Panic) {
        // This panic IS the injected fault the containment boundary
        // exists to catch. lint:allow(panic-path)
        panic!("injected kernel panic (corruption injector)");
    }
    let (data, _, index) = col.parts_mut();
    let pieces = index.pieces_mut();
    match kind {
        CorruptionKind::SumFlip => {
            for piece in pieces.iter_mut() {
                if let Some(sum) = piece.sum {
                    piece.sum = Some(sum ^ 0xA5);
                    return true;
                }
            }
            false
        }
        CorruptionKind::PrefixFlip => {
            for piece in pieces.iter_mut() {
                if piece.is_empty() {
                    continue;
                }
                let Some(prefix) = piece.covering_prefix() else {
                    continue;
                };
                // Flip the entry one past the piece's middle position:
                // it changes the derived value at that position, which
                // lies inside this piece's extent, so this very piece
                // fails validation.
                let pos = piece.start + piece.len() / 2;
                let entry = pos - prefix.base() + 1;
                let base = prefix.base();
                let mut sums = prefix.sums().to_vec();
                sums[entry] ^= 0xA5;
                let Some(flipped) = PrefixSums::from_parts(base, sums) else {
                    continue;
                };
                piece.prefix = Some(Arc::new(flipped));
                return true;
            }
            false
        }
        CorruptionKind::BoundaryFlip => {
            for piece in pieces.iter_mut() {
                if piece.is_empty() {
                    continue;
                }
                let v = data[piece.start];
                if v < i64::MAX {
                    // The piece's own first value now violates the bound.
                    piece.lo = Some(v + 1);
                } else {
                    piece.hi = Some(v);
                }
                return true;
            }
            false
        }
        CorruptionKind::Panic => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cracked() -> CrackerColumn {
        let values: Vec<i64> = (0..2000).map(|i| (i * 7919) % 2000).collect();
        let mut c = CrackerColumn::from_values(values);
        let _ = c.crack_select(100, 400);
        let _ = c.crack_select(900, 1500);
        c
    }

    fn sorted() -> CrackerColumn {
        let mut c = CrackerColumn::from_values((0..1000).rev().collect());
        c.sort_fully();
        c
    }

    #[test]
    fn disarmed_injector_only_counts() {
        let inj = CorruptionInjector::new();
        for _ in 0..10 {
            assert!(inj.tick().is_none());
        }
        assert_eq!(inj.ops_performed(), 10);
    }

    #[test]
    fn armed_injector_fires_exactly_once_at_the_index() {
        let inj = CorruptionInjector::new();
        inj.arm(3, CorruptionKind::PrefixFlip);
        let fired: Vec<Option<CorruptionKind>> = (0..8).map(|_| inj.tick()).collect();
        assert_eq!(
            fired.iter().flatten().count(),
            1,
            "one-shot: exactly one fire"
        );
        assert_eq!(fired[3], Some(CorruptionKind::PrefixFlip));
    }

    #[test]
    fn reset_disarms_and_restarts_the_count() {
        let inj = CorruptionInjector::new();
        inj.arm(0, CorruptionKind::SumFlip);
        assert!(inj.tick().is_some());
        inj.reset();
        assert_eq!(inj.ops_performed(), 0);
        assert!(inj.tick().is_none(), "reset must disarm");
    }

    #[test]
    fn sum_flip_is_detected_by_validate() {
        let mut col = cracked();
        assert!(col.validate());
        assert!(corrupt_column(&mut col, CorruptionKind::SumFlip));
        assert!(!col.validate(), "flipped sum must fail validation");
    }

    #[test]
    fn prefix_flip_is_detected_by_validate() {
        let mut col = sorted();
        assert!(col.validate());
        assert!(corrupt_column(&mut col, CorruptionKind::PrefixFlip));
        assert!(!col.validate(), "flipped prefix entry must fail validation");
    }

    #[test]
    fn boundary_flip_is_detected_by_validate() {
        let mut col = cracked();
        assert!(corrupt_column(&mut col, CorruptionKind::BoundaryFlip));
        assert!(!col.validate(), "tightened bound must fail validation");
    }

    #[test]
    fn corruption_never_touches_base_data() {
        for kind in [
            CorruptionKind::SumFlip,
            CorruptionKind::PrefixFlip,
            CorruptionKind::BoundaryFlip,
        ] {
            let mut col = sorted();
            let before = col.data().to_vec();
            let _ = corrupt_column(&mut col, kind);
            assert_eq!(col.data(), &before[..], "{kind}: data must be untouched");
        }
    }

    #[test]
    #[should_panic(expected = "injected kernel panic")]
    fn panic_kind_panics() {
        let mut col = cracked();
        let _ = corrupt_column(&mut col, CorruptionKind::Panic);
    }

    #[test]
    fn flip_on_a_column_without_targets_reports_false() {
        // A fresh (never cracked, never sorted) column has no cached sums
        // and no prefix arrays.
        let mut col = CrackerColumn::from_values(vec![3, 1, 2]);
        assert!(!corrupt_column(&mut col, CorruptionKind::SumFlip));
        assert!(!corrupt_column(&mut col, CorruptionKind::PrefixFlip));
        assert!(col.validate());
        // Boundary flips always have a target on a non-empty column.
        assert!(corrupt_column(&mut col, CorruptionKind::BoundaryFlip));
        assert!(!col.validate());
    }
}
