//! # holistic-cracking
//!
//! Adaptive indexing (database cracking) for the holistic indexing kernel.
//!
//! Database cracking (Idreos, Kersten, Manegold — CIDR 2007) builds indexes
//! *partially and incrementally as a side effect of query processing*: the
//! first query on a column copies it into a **cracker column**; every range
//! select physically reorganizes ("cracks") the pieces its bounds fall into,
//! so that qualifying values become contiguous; a **cracker index** records
//! the piece boundaries. With more queries the column becomes more and more
//! ordered and selects approach index performance, without ever paying the
//! up-front cost of a full sort.
//!
//! This crate provides the full adaptive-indexing substrate the paper's
//! holistic kernel builds on:
//!
//! * [`kernels`] — the in-place partitioning kernels (`crack_in_two`,
//!   `crack_in_three`), with and without row-id payloads.
//! * [`piece`] / [`index`] — pieces and the cracker (piece) index.
//! * [`cracker`] — [`CrackerColumn`]: the query-facing cracked copy of a
//!   base column, including *random refinement actions* (the building block
//!   of the paper's idle-time tuning).
//! * [`stochastic`] — stochastic cracking variants (DDC, DDR, MDD1R) for
//!   robustness against adversarial (e.g. sequential) workloads.
//! * [`merging`] — adaptive merging, the partition/merge-style alternative.
//! * [`updates`] — cracking under updates: pending insert/delete buffers
//!   merged into the cracker column with ripple insertion/deletion.
//! * [`concurrent`] — a latch-protected cracker column usable from multiple
//!   threads: the column is split into fixed-extent **shards**, each its
//!   own piece table behind its own reader/writer latch, so queries fan
//!   out and compose per-shard aggregates while writers crack disjoint
//!   shards in parallel (a one-shard column keeps the classic
//!   single-latch behavior).
//! * [`persist`] — snapshot encode/decode of the learned cracking state,
//!   with full validation of every recovered piece.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod concurrent;
pub mod corrupt;
pub mod cracker;
pub mod index;
pub mod kernels;
pub mod merging;
pub mod persist;
pub mod piece;
pub mod sideways;
pub mod stochastic;
pub mod updates;

pub use concurrent::{
    AggregateCacheDelta, BatchRefineOutcome, BatchSelectOutcome, ConcurrentCrackerColumn,
    LatchStats, QueryAnswer, RefineOutcome, ScrubOutcome, SelectOutcome,
};
pub use corrupt::{corrupt_column, CorruptionInjector, CorruptionKind};
pub use cracker::{CrackerColumn, RangeAggregate};
pub use index::{PieceIndex, SplitGroup};
pub use kernels::{
    crack_in_k, crack_in_k_pred, crack_in_k_sums, crack_in_k_sums_pred, crack_in_three,
    crack_in_three_pred, crack_in_three_sums, crack_in_three_sums_pred, crack_in_two,
    crack_in_two_pred, crack_in_two_sums, crack_in_two_sums_pred, CrackKernel, KWaySums,
    KernelChoice, KernelDispatches, ThreeWaySums, TwoWaySums, DEFAULT_PREDICATION_THRESHOLD,
};
pub use merging::AdaptiveMergingIndex;
pub use persist::{
    decode_cracker_column, decode_cracker_column_with, encode_cracker_column, DecodeValidation,
};
pub use piece::Piece;
pub use sideways::{CrackerMap, MapSet};
pub use stochastic::CrackPolicy;
pub use updates::UpdatableCrackerColumn;

/// Prefix-sum arrays shared by sorted pieces (re-exported from the storage
/// layer): the structure behind zero-read sorted-piece aggregates.
pub use holistic_storage::PrefixSums;
/// Row identifier type (re-exported from the storage layer).
pub use holistic_storage::RowId;
/// Value type cracked by this crate (re-exported from the storage layer).
pub use holistic_storage::Value;
