//! In-place partitioning kernels.
//!
//! These are the physical reorganization primitives of database cracking:
//! `crack_in_two` splits a piece around one pivot (used when a query bound
//! falls into a piece), `crack_in_three` splits a piece around two pivots in
//! a single pass (used when both bounds of a range query fall into the same
//! piece). Both exist in a plain form and in a form that permutes a parallel
//! row-id array, which is what enables tuple reconstruction (projections of
//! other attributes) after cracking.

use crate::{RowId, Value};

/// Partitions `data` in place so that all values `< pivot` precede all
/// values `>= pivot`. Returns the index of the first value `>= pivot`
/// (equivalently, the number of values `< pivot`).
pub fn crack_in_two(data: &mut [Value], pivot: Value) -> usize {
    if data.is_empty() {
        return 0;
    }
    let mut lo = 0usize;
    let mut hi = data.len();
    while lo < hi {
        if data[lo] < pivot {
            lo += 1;
        } else {
            hi -= 1;
            data.swap(lo, hi);
        }
    }
    lo
}

/// Like [`crack_in_two`], but keeps a parallel `rowids` array aligned with
/// the values (every swap is mirrored).
///
/// # Panics
///
/// Panics if `data` and `rowids` have different lengths.
pub fn crack_in_two_with_rowids(data: &mut [Value], rowids: &mut [RowId], pivot: Value) -> usize {
    assert_eq!(data.len(), rowids.len(), "values and rowids must be aligned");
    if data.is_empty() {
        return 0;
    }
    let mut lo = 0usize;
    let mut hi = data.len();
    while lo < hi {
        if data[lo] < pivot {
            lo += 1;
        } else {
            hi -= 1;
            data.swap(lo, hi);
            rowids.swap(lo, hi);
        }
    }
    lo
}

/// Partitions `data` in place into three regions in a single pass:
/// values `< lo`, values in `[lo, hi)`, and values `>= hi`.
///
/// Returns `(a, b)` such that `data[..a] < lo`, `lo <= data[a..b] < hi`, and
/// `data[b..] >= hi`.
///
/// If `hi <= lo` the middle region is empty and the call degenerates to a
/// single [`crack_in_two`] at `lo` (all values `>= lo` are also `>= hi`
/// only when `hi <= lo` holds for them, so we simply partition at `lo` and
/// report an empty middle).
pub fn crack_in_three(data: &mut [Value], lo: Value, hi: Value) -> (usize, usize) {
    if hi <= lo {
        let a = crack_in_two(data, lo);
        return (a, a);
    }
    // Dutch-national-flag style three-way partition.
    let mut lt = 0usize; // data[..lt] < lo
    let mut i = 0usize; // data[lt..i] in [lo, hi)
    let mut gt = data.len(); // data[gt..] >= hi
    while i < gt {
        let v = data[i];
        if v < lo {
            data.swap(i, lt);
            lt += 1;
            i += 1;
        } else if v >= hi {
            gt -= 1;
            data.swap(i, gt);
        } else {
            i += 1;
        }
    }
    (lt, gt)
}

/// Like [`crack_in_three`], but keeps a parallel `rowids` array aligned.
///
/// # Panics
///
/// Panics if `data` and `rowids` have different lengths.
pub fn crack_in_three_with_rowids(
    data: &mut [Value],
    rowids: &mut [RowId],
    lo: Value,
    hi: Value,
) -> (usize, usize) {
    assert_eq!(data.len(), rowids.len(), "values and rowids must be aligned");
    if hi <= lo {
        let a = crack_in_two_with_rowids(data, rowids, lo);
        return (a, a);
    }
    let mut lt = 0usize;
    let mut i = 0usize;
    let mut gt = data.len();
    while i < gt {
        let v = data[i];
        if v < lo {
            data.swap(i, lt);
            rowids.swap(i, lt);
            lt += 1;
            i += 1;
        } else if v >= hi {
            gt -= 1;
            data.swap(i, gt);
            rowids.swap(i, gt);
        } else {
            i += 1;
        }
    }
    (lt, gt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partitioned_two(data: &[Value], split: usize, pivot: Value) {
        assert!(data[..split].iter().all(|&v| v < pivot), "left side violated");
        assert!(data[split..].iter().all(|&v| v >= pivot), "right side violated");
    }

    fn assert_partitioned_three(data: &[Value], a: usize, b: usize, lo: Value, hi: Value) {
        assert!(data[..a].iter().all(|&v| v < lo), "first region violated");
        assert!(
            data[a..b].iter().all(|&v| v >= lo && v < hi),
            "middle region violated"
        );
        assert!(data[b..].iter().all(|&v| v >= hi), "last region violated");
    }

    #[test]
    fn crack_in_two_basic() {
        let mut data = vec![5, 1, 9, 3, 7, 3, 0, 10];
        let orig = {
            let mut d = data.clone();
            d.sort_unstable();
            d
        };
        let split = crack_in_two(&mut data, 5);
        assert_eq!(split, 4);
        assert_partitioned_two(&data, split, 5);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "multiset must be preserved");
    }

    #[test]
    fn crack_in_two_extremes() {
        let mut data = vec![3, 1, 2];
        assert_eq!(crack_in_two(&mut data, i64::MIN), 0);
        assert_eq!(crack_in_two(&mut data, 100), 3);
        let mut empty: Vec<Value> = vec![];
        assert_eq!(crack_in_two(&mut empty, 5), 0);
        let mut single = vec![7];
        assert_eq!(crack_in_two(&mut single, 7), 0);
        assert_eq!(crack_in_two(&mut single, 8), 1);
    }

    #[test]
    fn crack_in_two_all_equal_values() {
        let mut data = vec![4; 10];
        assert_eq!(crack_in_two(&mut data, 4), 0);
        assert_eq!(crack_in_two(&mut data, 5), 10);
    }

    #[test]
    fn crack_in_two_with_rowids_keeps_pairs_aligned() {
        let mut data = vec![50, 10, 90, 30];
        let mut rowids: Vec<RowId> = vec![0, 1, 2, 3];
        let pairs_before: Vec<(Value, RowId)> =
            data.iter().copied().zip(rowids.iter().copied()).collect();
        let split = crack_in_two_with_rowids(&mut data, &mut rowids, 40);
        assert_partitioned_two(&data, split, 40);
        let mut pairs_after: Vec<(Value, RowId)> =
            data.iter().copied().zip(rowids.iter().copied()).collect();
        let mut expected = pairs_before;
        expected.sort_unstable();
        pairs_after.sort_unstable();
        assert_eq!(pairs_after, expected, "value/rowid pairs must survive cracking");
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn crack_in_two_with_rowids_rejects_mismatched_lengths() {
        let mut data = vec![1, 2];
        let mut rowids: Vec<RowId> = vec![0];
        let _ = crack_in_two_with_rowids(&mut data, &mut rowids, 1);
    }

    #[test]
    fn crack_in_three_basic() {
        let mut data = vec![5, 1, 9, 3, 7, 3, 0, 10, 4, 6];
        let mut expected = data.clone();
        expected.sort_unstable();
        let (a, b) = crack_in_three(&mut data, 3, 7);
        assert_partitioned_three(&data, a, b, 3, 7);
        assert_eq!(b - a, 5); // 5, 3, 3, 4, 6
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn crack_in_three_degenerate_range() {
        let mut data = vec![5, 1, 9, 3];
        let (a, b) = crack_in_three(&mut data, 6, 6);
        assert_eq!(a, b);
        assert!(data[..a].iter().all(|&v| v < 6));
        assert!(data[a..].iter().all(|&v| v >= 6));
        let (a, b) = crack_in_three(&mut data, 8, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn crack_in_three_whole_range() {
        let mut data = vec![2, 9, 4];
        let (a, b) = crack_in_three(&mut data, i64::MIN, i64::MAX);
        assert_eq!(a, 0);
        assert_eq!(b, 3);
    }

    #[test]
    fn crack_in_three_with_rowids_keeps_pairs_aligned() {
        let mut data = vec![50, 10, 90, 30, 70, 20];
        let mut rowids: Vec<RowId> = (0..6).collect();
        let mut expected: Vec<(Value, RowId)> =
            data.iter().copied().zip(rowids.iter().copied()).collect();
        let (a, b) = crack_in_three_with_rowids(&mut data, &mut rowids, 25, 75);
        assert_partitioned_three(&data, a, b, 25, 75);
        let mut pairs: Vec<(Value, RowId)> =
            data.iter().copied().zip(rowids.iter().copied()).collect();
        pairs.sort_unstable();
        expected.sort_unstable();
        assert_eq!(pairs, expected);
    }

    #[test]
    fn crack_in_three_empty_input() {
        let mut data: Vec<Value> = vec![];
        assert_eq!(crack_in_three(&mut data, 1, 5), (0, 0));
    }
}
