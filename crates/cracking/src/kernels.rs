//! In-place partitioning kernels.
//!
//! These are the physical reorganization primitives of database cracking:
//! `crack_in_two` splits a piece around one pivot (used when a query bound
//! falls into a piece), `crack_in_three` splits a piece around two pivots in
//! a single logical step (used when both bounds of a range query fall into
//! the same piece), and `crack_in_k` splits a piece around an arbitrary
//! sorted pivot set in one kernel invocation (used by batched execution,
//! where all of a batch's predicate bounds landing in a piece are resolved
//! together). All exist in a plain form and in a form that permutes a
//! parallel row-id array, which is what enables tuple reconstruction
//! (projections of other attributes) after cracking.
//!
//! # Range contract
//!
//! Every kernel and every caller in this crate uses **half-open ranges**:
//! a bound pair `(lo, hi)` always means the value interval `[lo, hi)` —
//! `lo` inclusive, `hi` exclusive. Concretely:
//!
//! * `crack_in_two(data, pivot)` puts values `< pivot` on the left and
//!   values `>= pivot` on the right, returning the index of the first
//!   value `>= pivot`;
//! * `crack_in_three(data, lo, hi)` produces the regions `< lo`,
//!   `[lo, hi)` and `>= hi`;
//! * a **degenerate** bound pair with `hi <= lo` denotes the empty interval:
//!   every `crack_in_three` variant (branchy and predicated, with and
//!   without row ids) then performs exactly one `crack_in_two` at `lo` and
//!   returns `(a, a)` — the data is still usefully partitioned at `lo`, the
//!   middle region is empty, and the only boundary a caller may record in a
//!   piece index is the one for `lo` (no boundary for `hi` materializes).
//!
//! # Branchy vs. predicated
//!
//! Each kernel comes in two physical flavors:
//!
//! * the **branchy** reference form (`crack_in_two`, …) uses the classic
//!   two-pointer / Dutch-national-flag loops whose `if value < pivot`
//!   branch is data-dependent — on uniform-random pieces it mispredicts
//!   roughly every other element, stalling the pipeline;
//! * the **predicated** form (`crack_in_two_pred`, …) replaces the branch
//!   with arithmetic on the comparison result: an unconditional swap plus a
//!   cursor advanced by `(value < pivot) as usize`. Every iteration executes
//!   the same instruction stream, so there is nothing to mispredict, at the
//!   price of always paying the swap's loads and stores.
//!
//! Mispredict stalls dominate on large out-of-cache pieces, while the extra
//! memory traffic of predication is felt most when a piece is cache
//! resident — the same cache-threshold reasoning the holistic kernel's
//! ranking model uses. [`CrackKernel`] packages that policy: `Auto`
//! dispatches to the branchy form below a piece-length threshold and to the
//! predicated form above it.

use crate::{RowId, Value};

/// Partitions `data` in place so that all values `< pivot` precede all
/// values `>= pivot`. Returns the index of the first value `>= pivot`
/// (equivalently, the number of values `< pivot`).
///
/// Branchy reference implementation (two-pointer loop).
pub fn crack_in_two(data: &mut [Value], pivot: Value) -> usize {
    if data.is_empty() {
        return 0;
    }
    let mut lo = 0usize;
    let mut hi = data.len();
    while lo < hi {
        if data[lo] < pivot {
            lo += 1;
        } else {
            hi -= 1;
            data.swap(lo, hi);
        }
    }
    lo
}

/// Like [`crack_in_two`], but keeps a parallel `rowids` array aligned with
/// the values (every swap is mirrored).
///
/// # Panics
///
/// Panics if `data` and `rowids` have different lengths.
pub fn crack_in_two_with_rowids(data: &mut [Value], rowids: &mut [RowId], pivot: Value) -> usize {
    assert_eq!(
        data.len(),
        rowids.len(),
        "values and rowids must be aligned"
    );
    if data.is_empty() {
        return 0;
    }
    let mut lo = 0usize;
    let mut hi = data.len();
    while lo < hi {
        if data[lo] < pivot {
            lo += 1;
        } else {
            hi -= 1;
            data.swap(lo, hi);
            rowids.swap(lo, hi);
        }
    }
    lo
}

/// Branch-free variant of [`crack_in_two`].
///
/// A predicated Lomuto partition: the write cursor trails the read cursor,
/// every examined element is swapped to the write position unconditionally,
/// and the write cursor advances by `(value < pivot) as usize`. The region
/// `data[write..read]` only ever holds values `>= pivot`, so the
/// unconditional swap is a no-op exactly when the element should stay —
/// correctness never depends on the comparison being taken as a branch,
/// which is what lets the compiler emit straight-line code.
///
/// Same contract and return value as [`crack_in_two`]; only the resulting
/// order *within* each side of the partition may differ.
pub fn crack_in_two_pred(data: &mut [Value], pivot: Value) -> usize {
    let mut write = 0usize;
    for read in 0..data.len() {
        let lt = usize::from(data[read] < pivot);
        data.swap(write, read);
        write += lt;
    }
    write
}

/// Branch-free variant of [`crack_in_two_with_rowids`] (see
/// [`crack_in_two_pred`] for the technique).
///
/// # Panics
///
/// Panics if `data` and `rowids` have different lengths.
pub fn crack_in_two_with_rowids_pred(
    data: &mut [Value],
    rowids: &mut [RowId],
    pivot: Value,
) -> usize {
    assert_eq!(
        data.len(),
        rowids.len(),
        "values and rowids must be aligned"
    );
    let mut write = 0usize;
    for read in 0..data.len() {
        let lt = usize::from(data[read] < pivot);
        data.swap(write, read);
        rowids.swap(write, read);
        write += lt;
    }
    write
}

/// Partitions `data` in place into three regions in a single pass:
/// values `< lo`, values in `[lo, hi)`, and values `>= hi`.
///
/// Returns `(a, b)` such that `data[..a] < lo`, `lo <= data[a..b] < hi`, and
/// `data[b..] >= hi`.
///
/// If `hi <= lo` (degenerate empty interval) the call performs a single
/// [`crack_in_two`] at `lo` and returns `(a, a)`; see the module docs for
/// the full degenerate-range contract.
///
/// Branchy reference implementation (Dutch-national-flag pass).
pub fn crack_in_three(data: &mut [Value], lo: Value, hi: Value) -> (usize, usize) {
    if hi <= lo {
        let a = crack_in_two(data, lo);
        return (a, a);
    }
    let mut lt = 0usize; // data[..lt] < lo
    let mut i = 0usize; // data[lt..i] in [lo, hi)
    let mut gt = data.len(); // data[gt..] >= hi
    while i < gt {
        let v = data[i];
        if v < lo {
            data.swap(i, lt);
            lt += 1;
            i += 1;
        } else if v >= hi {
            gt -= 1;
            data.swap(i, gt);
        } else {
            i += 1;
        }
    }
    (lt, gt)
}

/// Like [`crack_in_three`], but keeps a parallel `rowids` array aligned.
///
/// The degenerate `hi <= lo` interval behaves exactly like the plain form:
/// one [`crack_in_two_with_rowids`] at `lo`, returning `(a, a)`.
///
/// # Panics
///
/// Panics if `data` and `rowids` have different lengths.
pub fn crack_in_three_with_rowids(
    data: &mut [Value],
    rowids: &mut [RowId],
    lo: Value,
    hi: Value,
) -> (usize, usize) {
    assert_eq!(
        data.len(),
        rowids.len(),
        "values and rowids must be aligned"
    );
    if hi <= lo {
        let a = crack_in_two_with_rowids(data, rowids, lo);
        return (a, a);
    }
    let mut lt = 0usize;
    let mut i = 0usize;
    let mut gt = data.len();
    while i < gt {
        let v = data[i];
        if v < lo {
            data.swap(i, lt);
            rowids.swap(i, lt);
            lt += 1;
            i += 1;
        } else if v >= hi {
            gt -= 1;
            data.swap(i, gt);
            rowids.swap(i, gt);
        } else {
            i += 1;
        }
    }
    (lt, gt)
}

/// Branch-free variant of [`crack_in_three`].
///
/// A three-way partition cannot be predicated as a single pass without
/// introducing data-dependent stores at both ends of the piece, so the
/// predicated form runs two branch-free [`crack_in_two_pred`] passes: first
/// at `lo` over the whole piece, then at `hi` over the upper remainder.
/// Each pass is straight-line code; the second touches only `data[a..]`.
///
/// Same contract and return value as [`crack_in_three`], including the
/// degenerate `hi <= lo` behavior.
pub fn crack_in_three_pred(data: &mut [Value], lo: Value, hi: Value) -> (usize, usize) {
    if hi <= lo {
        let a = crack_in_two_pred(data, lo);
        return (a, a);
    }
    let a = crack_in_two_pred(data, lo);
    let b = a + crack_in_two_pred(&mut data[a..], hi);
    (a, b)
}

/// Branch-free variant of [`crack_in_three_with_rowids`] (see
/// [`crack_in_three_pred`]).
///
/// # Panics
///
/// Panics if `data` and `rowids` have different lengths.
pub fn crack_in_three_with_rowids_pred(
    data: &mut [Value],
    rowids: &mut [RowId],
    lo: Value,
    hi: Value,
) -> (usize, usize) {
    assert_eq!(
        data.len(),
        rowids.len(),
        "values and rowids must be aligned"
    );
    if hi <= lo {
        let a = crack_in_two_with_rowids_pred(data, rowids, lo);
        return (a, a);
    }
    let a = crack_in_two_with_rowids_pred(data, rowids, lo);
    let b = a + crack_in_two_with_rowids_pred(&mut data[a..], &mut rowids[a..], hi);
    (a, b)
}

// ---------------------------------------------------------------------
// Multi-pivot kernels (batched cracking)
// ---------------------------------------------------------------------

fn assert_pivots_increasing(pivots: &[Value]) {
    assert!(
        pivots.windows(2).all(|w| w[0] < w[1]),
        "pivots must be strictly increasing"
    );
}

/// Shared engine of the `crack_in_k` family: recursive median-pivot
/// partitioning. The piece is partitioned around the *middle* pivot with one
/// streaming two-way pass, then each half recurses on its pivot subset, so
/// `k` pivots cost `O(n log k)` total work in `log k` perfectly balanced
/// sweeps instead of the `O(n k)` that `k` separate [`crack_in_two`] calls
/// would pay on a piece none of them shrinks much.
///
/// This shape was chosen over a classify-and-permute single pass (counting
/// pass + in-place cycle placement) after measuring both: the cycle walk's
/// per-element classification forms a serial dependency chain the CPU cannot
/// overlap, making it 7–18× *slower* at 1M values than these tight two-way
/// sweeps, which stream with full ILP and hardware prefetch (see
/// `benches/micro_crack_kernels.rs`).
fn crack_in_k_rec(
    data: &mut [Value],
    rowids: Option<&mut [RowId]>,
    pivots: &[Value],
    offset: usize,
    boundaries: &mut [usize],
    predicated: bool,
) {
    if pivots.is_empty() {
        return;
    }
    let mid = pivots.len() / 2;
    let pivot = pivots[mid];
    let mut rowids = rowids;
    let split = match (&mut rowids, predicated) {
        (Some(ids), true) => crack_in_two_with_rowids_pred(data, ids, pivot),
        (Some(ids), false) => crack_in_two_with_rowids(data, ids, pivot),
        (None, true) => crack_in_two_pred(data, pivot),
        (None, false) => crack_in_two(data, pivot),
    };
    boundaries[mid] = offset + split;
    let (left_data, right_data) = data.split_at_mut(split);
    let (left_ids, right_ids) = match rowids {
        Some(ids) => {
            let (a, b) = ids.split_at_mut(split);
            (Some(a), Some(b))
        }
        None => (None, None),
    };
    let (left_bounds, rest) = boundaries.split_at_mut(mid);
    crack_in_k_rec(
        left_data,
        left_ids,
        &pivots[..mid],
        offset,
        left_bounds,
        predicated,
    );
    crack_in_k_rec(
        right_data,
        right_ids,
        &pivots[mid + 1..],
        offset + split,
        &mut rest[1..],
        predicated,
    );
}

/// Partitions `data` in place around all of `pivots` (strictly increasing)
/// at once, producing `k + 1` value-ordered regions: values `< pivots[0]`,
/// `[pivots[0], pivots[1])`, …, values `>= pivots[k-1]`.
///
/// Returns one boundary per pivot: `boundaries[i]` is the index of the
/// first value `>= pivots[i]` (equivalently the number of values
/// `< pivots[i]`) — exactly what `k` separate [`crack_in_two`] calls would
/// return, but computed with `O(n log k)` recursive median-pivot sweeps
/// instead of `k` full passes.
///
/// An empty pivot list moves nothing and returns an empty vector.
///
/// Branchy reference form (two-pointer sweeps).
///
/// # Panics
///
/// Panics if `pivots` is not strictly increasing.
pub fn crack_in_k(data: &mut [Value], pivots: &[Value]) -> Vec<usize> {
    assert_pivots_increasing(pivots);
    let mut boundaries = vec![0usize; pivots.len()];
    crack_in_k_rec(data, None, pivots, 0, &mut boundaries, false);
    boundaries
}

/// Branch-free variant of [`crack_in_k`]: every recursive sweep is a
/// predicated [`crack_in_two_pred`] pass, so random pivots cannot stall the
/// pipeline on any level.
///
/// # Panics
///
/// Panics if `pivots` is not strictly increasing.
pub fn crack_in_k_pred(data: &mut [Value], pivots: &[Value]) -> Vec<usize> {
    assert_pivots_increasing(pivots);
    let mut boundaries = vec![0usize; pivots.len()];
    crack_in_k_rec(data, None, pivots, 0, &mut boundaries, true);
    boundaries
}

/// Like [`crack_in_k`], but keeps a parallel `rowids` array aligned with
/// the values (every swap is mirrored).
///
/// # Panics
///
/// Panics if `data` and `rowids` have different lengths, or if `pivots` is
/// not strictly increasing.
pub fn crack_in_k_with_rowids(
    data: &mut [Value],
    rowids: &mut [RowId],
    pivots: &[Value],
) -> Vec<usize> {
    assert_eq!(
        data.len(),
        rowids.len(),
        "values and rowids must be aligned"
    );
    assert_pivots_increasing(pivots);
    let mut boundaries = vec![0usize; pivots.len()];
    crack_in_k_rec(data, Some(rowids), pivots, 0, &mut boundaries, false);
    boundaries
}

/// Branch-free variant of [`crack_in_k_with_rowids`] (see
/// [`crack_in_k_pred`]).
///
/// # Panics
///
/// Panics if `data` and `rowids` have different lengths, or if `pivots` is
/// not strictly increasing.
pub fn crack_in_k_with_rowids_pred(
    data: &mut [Value],
    rowids: &mut [RowId],
    pivots: &[Value],
) -> Vec<usize> {
    assert_eq!(
        data.len(),
        rowids.len(),
        "values and rowids must be aligned"
    );
    assert_pivots_increasing(pivots);
    let mut boundaries = vec![0usize; pivots.len()];
    crack_in_k_rec(data, Some(rowids), pivots, 0, &mut boundaries, true);
    boundaries
}

// ---------------------------------------------------------------------
// Sum-fused kernels (aggregate-cache by-products)
// ---------------------------------------------------------------------

/// Split position plus the value sums of both sides of one two-way
/// partitioning pass.
///
/// The sums are a *fused by-product*: the partitioning sweep already streams
/// every value of the piece through a register, so accumulating `lo_sum`
/// (values `< pivot`) and `total_sum` costs two adds per element and no
/// extra pass. `total_sum - lo_sum` is the sum of the `>= pivot` side.
/// This is what feeds the per-piece aggregate cache — piece sums are
/// produced while the data is already in cache, never by re-reading it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoWaySums {
    /// Index of the first value `>= pivot` (same as [`crack_in_two`]).
    pub split: usize,
    /// Sum of the values `< pivot`.
    pub lo_sum: i128,
    /// Sum of *all* values in the piece.
    pub total_sum: i128,
}

impl TwoWaySums {
    /// Sum of the values `>= pivot`.
    #[must_use]
    pub fn hi_sum(&self) -> i128 {
        self.total_sum - self.lo_sum
    }
}

/// Region boundaries plus per-region sums of one three-way partitioning
/// pass (see [`TwoWaySums`] for the fusion rationale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreeWaySums {
    /// Index of the first value `>= lo` (same as [`crack_in_three`]).
    pub a: usize,
    /// Index of the first value `>= hi`.
    pub b: usize,
    /// Sums of the three regions `< lo`, `[lo, hi)` and `>= hi`. For the
    /// degenerate `hi <= lo` interval the middle sum is 0.
    pub sums: [i128; 3],
}

/// Boundaries plus per-segment sums of one multi-pivot pass: `k` pivots
/// produce `k + 1` segments, `segment_sums[i]` being the sum of the values
/// between boundary `i - 1` and boundary `i` (see [`TwoWaySums`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWaySums {
    /// One boundary per pivot (same as [`crack_in_k`]).
    pub boundaries: Vec<usize>,
    /// One sum per segment (`boundaries.len() + 1` entries).
    pub segment_sums: Vec<i128>,
}

/// Sum-fused [`crack_in_two`]: same partitioning, plus both side sums.
pub fn crack_in_two_sums(data: &mut [Value], pivot: Value) -> TwoWaySums {
    let mut lo = 0usize;
    let mut hi = data.len();
    let mut lo_sum = 0i128;
    let mut total_sum = 0i128;
    while lo < hi {
        let v = data[lo];
        // Each element is examined (and counted) exactly once: `< pivot`
        // elements when the cursor passes them, `>= pivot` elements when
        // they are swapped out to the tail.
        total_sum += i128::from(v);
        if v < pivot {
            lo_sum += i128::from(v);
            lo += 1;
        } else {
            hi -= 1;
            data.swap(lo, hi);
        }
    }
    TwoWaySums {
        split: lo,
        lo_sum,
        total_sum,
    }
}

/// Sum-fused [`crack_in_two_pred`] (branch-free, see [`TwoWaySums`]).
pub fn crack_in_two_sums_pred(data: &mut [Value], pivot: Value) -> TwoWaySums {
    let mut write = 0usize;
    let mut lo_sum = 0i128;
    let mut total_sum = 0i128;
    for read in 0..data.len() {
        let v = data[read];
        let lt = v < pivot;
        // Branch-free masked accumulation, same trick as the storage scans.
        let mask = -(i64::from(lt));
        lo_sum += i128::from(v & mask);
        total_sum += i128::from(v);
        data.swap(write, read);
        write += usize::from(lt);
    }
    TwoWaySums {
        split: write,
        lo_sum,
        total_sum,
    }
}

/// Sum-fused [`crack_in_two_with_rowids`].
///
/// # Panics
///
/// Panics if `data` and `rowids` have different lengths.
pub fn crack_in_two_with_rowids_sums(
    data: &mut [Value],
    rowids: &mut [RowId],
    pivot: Value,
) -> TwoWaySums {
    assert_eq!(
        data.len(),
        rowids.len(),
        "values and rowids must be aligned"
    );
    let mut lo = 0usize;
    let mut hi = data.len();
    let mut lo_sum = 0i128;
    let mut total_sum = 0i128;
    while lo < hi {
        let v = data[lo];
        total_sum += i128::from(v);
        if v < pivot {
            lo_sum += i128::from(v);
            lo += 1;
        } else {
            hi -= 1;
            data.swap(lo, hi);
            rowids.swap(lo, hi);
        }
    }
    TwoWaySums {
        split: lo,
        lo_sum,
        total_sum,
    }
}

/// Sum-fused [`crack_in_two_with_rowids_pred`].
///
/// # Panics
///
/// Panics if `data` and `rowids` have different lengths.
pub fn crack_in_two_with_rowids_sums_pred(
    data: &mut [Value],
    rowids: &mut [RowId],
    pivot: Value,
) -> TwoWaySums {
    assert_eq!(
        data.len(),
        rowids.len(),
        "values and rowids must be aligned"
    );
    let mut write = 0usize;
    let mut lo_sum = 0i128;
    let mut total_sum = 0i128;
    for read in 0..data.len() {
        let v = data[read];
        let lt = v < pivot;
        let mask = -(i64::from(lt));
        lo_sum += i128::from(v & mask);
        total_sum += i128::from(v);
        data.swap(write, read);
        rowids.swap(write, read);
        write += usize::from(lt);
    }
    TwoWaySums {
        split: write,
        lo_sum,
        total_sum,
    }
}

/// Sum-fused [`crack_in_three`]: region boundaries plus all three region
/// sums from the single Dutch-national-flag pass. Degenerate `hi <= lo`
/// performs one [`crack_in_two_sums`] at `lo` (empty middle, sum 0).
pub fn crack_in_three_sums(data: &mut [Value], lo: Value, hi: Value) -> ThreeWaySums {
    if hi <= lo {
        let two = crack_in_two_sums(data, lo);
        return ThreeWaySums {
            a: two.split,
            b: two.split,
            sums: [two.lo_sum, 0, two.hi_sum()],
        };
    }
    let mut lt = 0usize;
    let mut i = 0usize;
    let mut gt = data.len();
    let mut sums = [0i128; 3];
    while i < gt {
        let v = data[i];
        if v < lo {
            sums[0] += i128::from(v);
            data.swap(i, lt);
            lt += 1;
            i += 1;
        } else if v >= hi {
            sums[2] += i128::from(v);
            gt -= 1;
            data.swap(i, gt);
        } else {
            sums[1] += i128::from(v);
            i += 1;
        }
    }
    ThreeWaySums { a: lt, b: gt, sums }
}

/// Sum-fused [`crack_in_three_pred`]: two branch-free
/// [`crack_in_two_sums_pred`] passes, region sums composed from the pass
/// totals.
pub fn crack_in_three_sums_pred(data: &mut [Value], lo: Value, hi: Value) -> ThreeWaySums {
    if hi <= lo {
        let two = crack_in_two_sums_pred(data, lo);
        return ThreeWaySums {
            a: two.split,
            b: two.split,
            sums: [two.lo_sum, 0, two.hi_sum()],
        };
    }
    let first = crack_in_two_sums_pred(data, lo);
    let second = crack_in_two_sums_pred(&mut data[first.split..], hi);
    ThreeWaySums {
        a: first.split,
        b: first.split + second.split,
        sums: [first.lo_sum, second.lo_sum, second.hi_sum()],
    }
}

/// Sum-fused [`crack_in_three_with_rowids`].
///
/// # Panics
///
/// Panics if `data` and `rowids` have different lengths.
pub fn crack_in_three_with_rowids_sums(
    data: &mut [Value],
    rowids: &mut [RowId],
    lo: Value,
    hi: Value,
) -> ThreeWaySums {
    assert_eq!(
        data.len(),
        rowids.len(),
        "values and rowids must be aligned"
    );
    if hi <= lo {
        let two = crack_in_two_with_rowids_sums(data, rowids, lo);
        return ThreeWaySums {
            a: two.split,
            b: two.split,
            sums: [two.lo_sum, 0, two.hi_sum()],
        };
    }
    let mut lt = 0usize;
    let mut i = 0usize;
    let mut gt = data.len();
    let mut sums = [0i128; 3];
    while i < gt {
        let v = data[i];
        if v < lo {
            sums[0] += i128::from(v);
            data.swap(i, lt);
            rowids.swap(i, lt);
            lt += 1;
            i += 1;
        } else if v >= hi {
            sums[2] += i128::from(v);
            gt -= 1;
            data.swap(i, gt);
            rowids.swap(i, gt);
        } else {
            sums[1] += i128::from(v);
            i += 1;
        }
    }
    ThreeWaySums { a: lt, b: gt, sums }
}

/// Sum-fused [`crack_in_three_with_rowids_pred`].
///
/// # Panics
///
/// Panics if `data` and `rowids` have different lengths.
pub fn crack_in_three_with_rowids_sums_pred(
    data: &mut [Value],
    rowids: &mut [RowId],
    lo: Value,
    hi: Value,
) -> ThreeWaySums {
    assert_eq!(
        data.len(),
        rowids.len(),
        "values and rowids must be aligned"
    );
    if hi <= lo {
        let two = crack_in_two_with_rowids_sums_pred(data, rowids, lo);
        return ThreeWaySums {
            a: two.split,
            b: two.split,
            sums: [two.lo_sum, 0, two.hi_sum()],
        };
    }
    let first = crack_in_two_with_rowids_sums_pred(data, rowids, lo);
    let second = crack_in_two_with_rowids_sums_pred(
        &mut data[first.split..],
        &mut rowids[first.split..],
        hi,
    );
    ThreeWaySums {
        a: first.split,
        b: first.split + second.split,
        sums: [first.lo_sum, second.lo_sum, second.hi_sum()],
    }
}

/// Sum-fused twin of [`crack_in_k_rec`]: every recursive sweep is a fused
/// two-way pass, and each recursion leaf records its segment's sum. The
/// parent knows every child subrange's total (left = `lo_sum`, right =
/// `total - lo_sum` of its own pass), so leaves with no pivots left assign
/// `subrange_sum` without ever touching the data again — the whole segment
/// sum vector is a by-product of the `log k` sweeps the partitioning does
/// anyway.
#[allow(clippy::too_many_arguments)]
fn crack_in_k_rec_sums(
    data: &mut [Value],
    rowids: Option<&mut [RowId]>,
    pivots: &[Value],
    offset: usize,
    subrange_sum: Option<i128>,
    boundaries: &mut [usize],
    segment_sums: &mut [i128],
    predicated: bool,
) {
    if pivots.is_empty() {
        // Every recursive call passes `Some` for the leaf (the parent
        // computes the child sums before recursing); a `None` here is a
        // kernel bug no fallback could hide, so abort over a wrong sum.
        // lint:allow(panic-path)
        segment_sums[0] = subrange_sum.expect("leaf segments always have a parent-computed sum");
        return;
    }
    let mid = pivots.len() / 2;
    let pivot = pivots[mid];
    let mut rowids = rowids;
    let pass = match (&mut rowids, predicated) {
        (Some(ids), true) => crack_in_two_with_rowids_sums_pred(data, ids, pivot),
        (Some(ids), false) => crack_in_two_with_rowids_sums(data, ids, pivot),
        (None, true) => crack_in_two_sums_pred(data, pivot),
        (None, false) => crack_in_two_sums(data, pivot),
    };
    if let Some(s) = subrange_sum {
        debug_assert_eq!(pass.total_sum, s, "pass total must match parent");
    }
    boundaries[mid] = offset + pass.split;
    let (left_data, right_data) = data.split_at_mut(pass.split);
    let (left_ids, right_ids) = match rowids {
        Some(ids) => {
            let (a, b) = ids.split_at_mut(pass.split);
            (Some(a), Some(b))
        }
        None => (None, None),
    };
    let (left_bounds, rest_bounds) = boundaries.split_at_mut(mid);
    let (left_sums, right_sums) = segment_sums.split_at_mut(mid + 1);
    crack_in_k_rec_sums(
        left_data,
        left_ids,
        &pivots[..mid],
        offset,
        Some(pass.lo_sum),
        left_bounds,
        left_sums,
        predicated,
    );
    crack_in_k_rec_sums(
        right_data,
        right_ids,
        &pivots[mid + 1..],
        offset + pass.split,
        Some(pass.total_sum - pass.lo_sum),
        &mut rest_bounds[1..],
        right_sums,
        predicated,
    );
}

/// Shared driver of the public sum-fused `crack_in_k` variants.
fn crack_in_k_sums_impl(
    data: &mut [Value],
    rowids: Option<&mut [RowId]>,
    pivots: &[Value],
    predicated: bool,
) -> KWaySums {
    assert_pivots_increasing(pivots);
    if pivots.is_empty() {
        return KWaySums {
            boundaries: Vec::new(),
            segment_sums: Vec::new(),
        };
    }
    let mut boundaries = vec![0usize; pivots.len()];
    let mut segment_sums = vec![0i128; pivots.len() + 1];
    // The top-level total is produced by the first sweep itself; only the
    // recursion's leaves need a parent-supplied subrange sum, and the top
    // level always has at least one pivot here, so `None` never reaches a
    // leaf — no pre-pass over the data.
    crack_in_k_rec_sums(
        data,
        rowids,
        pivots,
        0,
        None,
        &mut boundaries,
        &mut segment_sums,
        predicated,
    );
    KWaySums {
        boundaries,
        segment_sums,
    }
}

/// Sum-fused [`crack_in_k`]: boundaries plus all `k + 1` segment sums.
///
/// # Panics
///
/// Panics if `pivots` is not strictly increasing.
pub fn crack_in_k_sums(data: &mut [Value], pivots: &[Value]) -> KWaySums {
    crack_in_k_sums_impl(data, None, pivots, false)
}

/// Sum-fused [`crack_in_k_pred`].
///
/// # Panics
///
/// Panics if `pivots` is not strictly increasing.
pub fn crack_in_k_sums_pred(data: &mut [Value], pivots: &[Value]) -> KWaySums {
    crack_in_k_sums_impl(data, None, pivots, true)
}

/// Sum-fused [`crack_in_k_with_rowids`].
///
/// # Panics
///
/// Panics if `data` and `rowids` have different lengths, or if `pivots` is
/// not strictly increasing.
pub fn crack_in_k_with_rowids_sums(
    data: &mut [Value],
    rowids: &mut [RowId],
    pivots: &[Value],
) -> KWaySums {
    assert_eq!(
        data.len(),
        rowids.len(),
        "values and rowids must be aligned"
    );
    crack_in_k_sums_impl(data, Some(rowids), pivots, false)
}

/// Sum-fused [`crack_in_k_with_rowids_pred`].
///
/// # Panics
///
/// Panics if `data` and `rowids` have different lengths, or if `pivots` is
/// not strictly increasing.
pub fn crack_in_k_with_rowids_sums_pred(
    data: &mut [Value],
    rowids: &mut [RowId],
    pivots: &[Value],
) -> KWaySums {
    assert_eq!(
        data.len(),
        rowids.len(),
        "values and rowids must be aligned"
    );
    crack_in_k_sums_impl(data, Some(rowids), pivots, true)
}

/// Default piece length (in values) below which [`CrackKernel::Auto`]
/// dispatches to the branchy kernels.
///
/// Measured on uniform-random pieces (`benches/micro_crack_kernels.rs`),
/// the predicated form wins at every size from 64 values up (~3.5–3.9× on
/// cold pieces, ~6× at 1M values), because a random pivot mispredicts the
/// branchy loop on roughly every other element regardless of cache
/// residency. The branchy form only wins (~1.05–1.1×) when a piece's
/// content is already partitioned around the pivot — predictable branches —
/// which in a cracker is most likely for tiny, repeatedly re-cracked
/// cache-resident pieces. The default therefore keeps branchy only below
/// 128 values (one kilobyte, where the absolute gap is tens of
/// nanoseconds) and predicates everything above.
pub const DEFAULT_PREDICATION_THRESHOLD: usize = 128;

/// Which physical kernel implementation actually ran for one dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelChoice {
    /// The branchy reference kernels.
    Branchy,
    /// The branch-free predicated kernels.
    Predicated,
}

/// Policy selecting between branchy and predicated kernels per dispatch.
///
/// The policy is consulted with the length of the piece about to be cracked;
/// `Auto` mirrors the paper's cache-threshold reasoning (small, cache
/// resident pieces favor the branchy form, large ones the predicated form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrackKernel {
    /// Always use the branchy reference kernels.
    Branchy,
    /// Always use the predicated branch-free kernels.
    Predicated,
    /// Use branchy kernels for pieces shorter than `branchy_below` values
    /// and predicated kernels from that length on.
    Auto {
        /// Piece length at which dispatch switches to the predicated form.
        branchy_below: usize,
    },
}

impl CrackKernel {
    /// The `Auto` policy with the measured default threshold.
    #[must_use]
    pub fn auto() -> Self {
        CrackKernel::Auto {
            branchy_below: DEFAULT_PREDICATION_THRESHOLD,
        }
    }

    /// Resolves the policy for a piece of `piece_len` values.
    #[must_use]
    pub fn choose(&self, piece_len: usize) -> KernelChoice {
        match *self {
            CrackKernel::Branchy => KernelChoice::Branchy,
            CrackKernel::Predicated => KernelChoice::Predicated,
            CrackKernel::Auto { branchy_below } => {
                if piece_len < branchy_below {
                    KernelChoice::Branchy
                } else {
                    KernelChoice::Predicated
                }
            }
        }
    }

    /// Short stable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CrackKernel::Branchy => "branchy",
            CrackKernel::Predicated => "predicated",
            CrackKernel::Auto { .. } => "auto",
        }
    }

    /// Dispatching [`crack_in_two`] / [`crack_in_two_pred`].
    pub fn crack_in_two(&self, data: &mut [Value], pivot: Value) -> usize {
        match self.choose(data.len()) {
            KernelChoice::Branchy => crack_in_two(data, pivot),
            KernelChoice::Predicated => crack_in_two_pred(data, pivot),
        }
    }

    /// Dispatching [`crack_in_two_with_rowids`] /
    /// [`crack_in_two_with_rowids_pred`].
    pub fn crack_in_two_with_rowids(
        &self,
        data: &mut [Value],
        rowids: &mut [RowId],
        pivot: Value,
    ) -> usize {
        match self.choose(data.len()) {
            KernelChoice::Branchy => crack_in_two_with_rowids(data, rowids, pivot),
            KernelChoice::Predicated => crack_in_two_with_rowids_pred(data, rowids, pivot),
        }
    }

    /// Dispatching [`crack_in_three`] / [`crack_in_three_pred`].
    pub fn crack_in_three(&self, data: &mut [Value], lo: Value, hi: Value) -> (usize, usize) {
        match self.choose(data.len()) {
            KernelChoice::Branchy => crack_in_three(data, lo, hi),
            KernelChoice::Predicated => crack_in_three_pred(data, lo, hi),
        }
    }

    /// Dispatching [`crack_in_three_with_rowids`] /
    /// [`crack_in_three_with_rowids_pred`].
    pub fn crack_in_three_with_rowids(
        &self,
        data: &mut [Value],
        rowids: &mut [RowId],
        lo: Value,
        hi: Value,
    ) -> (usize, usize) {
        match self.choose(data.len()) {
            KernelChoice::Branchy => crack_in_three_with_rowids(data, rowids, lo, hi),
            KernelChoice::Predicated => crack_in_three_with_rowids_pred(data, rowids, lo, hi),
        }
    }

    /// Dispatching [`crack_in_k`] / [`crack_in_k_pred`].
    pub fn crack_in_k(&self, data: &mut [Value], pivots: &[Value]) -> Vec<usize> {
        match self.choose(data.len()) {
            KernelChoice::Branchy => crack_in_k(data, pivots),
            KernelChoice::Predicated => crack_in_k_pred(data, pivots),
        }
    }

    /// Dispatching [`crack_in_k_with_rowids`] /
    /// [`crack_in_k_with_rowids_pred`].
    pub fn crack_in_k_with_rowids(
        &self,
        data: &mut [Value],
        rowids: &mut [RowId],
        pivots: &[Value],
    ) -> Vec<usize> {
        match self.choose(data.len()) {
            KernelChoice::Branchy => crack_in_k_with_rowids(data, rowids, pivots),
            KernelChoice::Predicated => crack_in_k_with_rowids_pred(data, rowids, pivots),
        }
    }

    /// Dispatching [`crack_in_two_sums`] / [`crack_in_two_sums_pred`].
    pub fn crack_in_two_sums(&self, data: &mut [Value], pivot: Value) -> TwoWaySums {
        match self.choose(data.len()) {
            KernelChoice::Branchy => crack_in_two_sums(data, pivot),
            KernelChoice::Predicated => crack_in_two_sums_pred(data, pivot),
        }
    }

    /// Dispatching [`crack_in_two_with_rowids_sums`] /
    /// [`crack_in_two_with_rowids_sums_pred`].
    pub fn crack_in_two_with_rowids_sums(
        &self,
        data: &mut [Value],
        rowids: &mut [RowId],
        pivot: Value,
    ) -> TwoWaySums {
        match self.choose(data.len()) {
            KernelChoice::Branchy => crack_in_two_with_rowids_sums(data, rowids, pivot),
            KernelChoice::Predicated => crack_in_two_with_rowids_sums_pred(data, rowids, pivot),
        }
    }

    /// Dispatching [`crack_in_three_sums`] / [`crack_in_three_sums_pred`].
    pub fn crack_in_three_sums(&self, data: &mut [Value], lo: Value, hi: Value) -> ThreeWaySums {
        match self.choose(data.len()) {
            KernelChoice::Branchy => crack_in_three_sums(data, lo, hi),
            KernelChoice::Predicated => crack_in_three_sums_pred(data, lo, hi),
        }
    }

    /// Dispatching [`crack_in_three_with_rowids_sums`] /
    /// [`crack_in_three_with_rowids_sums_pred`].
    pub fn crack_in_three_with_rowids_sums(
        &self,
        data: &mut [Value],
        rowids: &mut [RowId],
        lo: Value,
        hi: Value,
    ) -> ThreeWaySums {
        match self.choose(data.len()) {
            KernelChoice::Branchy => crack_in_three_with_rowids_sums(data, rowids, lo, hi),
            KernelChoice::Predicated => crack_in_three_with_rowids_sums_pred(data, rowids, lo, hi),
        }
    }

    /// Dispatching [`crack_in_k_sums`] / [`crack_in_k_sums_pred`].
    pub fn crack_in_k_sums(&self, data: &mut [Value], pivots: &[Value]) -> KWaySums {
        match self.choose(data.len()) {
            KernelChoice::Branchy => crack_in_k_sums(data, pivots),
            KernelChoice::Predicated => crack_in_k_sums_pred(data, pivots),
        }
    }

    /// Dispatching [`crack_in_k_with_rowids_sums`] /
    /// [`crack_in_k_with_rowids_sums_pred`].
    pub fn crack_in_k_with_rowids_sums(
        &self,
        data: &mut [Value],
        rowids: &mut [RowId],
        pivots: &[Value],
    ) -> KWaySums {
        match self.choose(data.len()) {
            KernelChoice::Branchy => crack_in_k_with_rowids_sums(data, rowids, pivots),
            KernelChoice::Predicated => crack_in_k_with_rowids_sums_pred(data, rowids, pivots),
        }
    }
}

impl Default for CrackKernel {
    fn default() -> Self {
        CrackKernel::auto()
    }
}

impl std::fmt::Display for CrackKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Running totals of kernel dispatches, split by the physical form that ran.
///
/// Maintained by [`crate::CrackerColumn`] and surfaced through the engine's
/// metrics so benches can report which path served a workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelDispatches {
    /// Dispatches served by the branchy reference kernels.
    pub branchy: u64,
    /// Dispatches served by the predicated kernels.
    pub predicated: u64,
}

impl KernelDispatches {
    /// Records one dispatch.
    pub fn record(&mut self, choice: KernelChoice) {
        match choice {
            KernelChoice::Branchy => self.branchy += 1,
            KernelChoice::Predicated => self.predicated += 1,
        }
    }

    /// Total dispatches of either form.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.branchy + self.predicated
    }

    /// Component-wise difference against an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: KernelDispatches) -> KernelDispatches {
        KernelDispatches {
            branchy: self.branchy - earlier.branchy,
            predicated: self.predicated - earlier.predicated,
        }
    }

    /// Component-wise accumulation.
    pub fn add(&mut self, delta: KernelDispatches) {
        self.branchy += delta.branchy;
        self.predicated += delta.predicated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partitioned_two(data: &[Value], split: usize, pivot: Value) {
        assert!(
            data[..split].iter().all(|&v| v < pivot),
            "left side violated"
        );
        assert!(
            data[split..].iter().all(|&v| v >= pivot),
            "right side violated"
        );
    }

    fn assert_partitioned_three(data: &[Value], a: usize, b: usize, lo: Value, hi: Value) {
        assert!(data[..a].iter().all(|&v| v < lo), "first region violated");
        assert!(
            data[a..b].iter().all(|&v| v >= lo && v < hi),
            "middle region violated"
        );
        assert!(data[b..].iter().all(|&v| v >= hi), "last region violated");
    }

    #[test]
    fn crack_in_two_basic() {
        let mut data = vec![5, 1, 9, 3, 7, 3, 0, 10];
        let orig = {
            let mut d = data.clone();
            d.sort_unstable();
            d
        };
        let split = crack_in_two(&mut data, 5);
        assert_eq!(split, 4);
        assert_partitioned_two(&data, split, 5);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "multiset must be preserved");
    }

    #[test]
    fn crack_in_two_extremes() {
        let mut data = vec![3, 1, 2];
        assert_eq!(crack_in_two(&mut data, i64::MIN), 0);
        assert_eq!(crack_in_two(&mut data, 100), 3);
        let mut empty: Vec<Value> = vec![];
        assert_eq!(crack_in_two(&mut empty, 5), 0);
        let mut single = vec![7];
        assert_eq!(crack_in_two(&mut single, 7), 0);
        assert_eq!(crack_in_two(&mut single, 8), 1);
    }

    #[test]
    fn crack_in_two_all_equal_values() {
        let mut data = vec![4; 10];
        assert_eq!(crack_in_two(&mut data, 4), 0);
        assert_eq!(crack_in_two(&mut data, 5), 10);
    }

    #[test]
    fn crack_in_two_with_rowids_keeps_pairs_aligned() {
        let mut data = vec![50, 10, 90, 30];
        let mut rowids: Vec<RowId> = vec![0, 1, 2, 3];
        let pairs_before: Vec<(Value, RowId)> =
            data.iter().copied().zip(rowids.iter().copied()).collect();
        let split = crack_in_two_with_rowids(&mut data, &mut rowids, 40);
        assert_partitioned_two(&data, split, 40);
        let mut pairs_after: Vec<(Value, RowId)> =
            data.iter().copied().zip(rowids.iter().copied()).collect();
        let mut expected = pairs_before;
        expected.sort_unstable();
        pairs_after.sort_unstable();
        assert_eq!(
            pairs_after, expected,
            "value/rowid pairs must survive cracking"
        );
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn crack_in_two_with_rowids_rejects_mismatched_lengths() {
        let mut data = vec![1, 2];
        let mut rowids: Vec<RowId> = vec![0];
        let _ = crack_in_two_with_rowids(&mut data, &mut rowids, 1);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn predicated_with_rowids_rejects_mismatched_lengths() {
        let mut data = vec![1, 2];
        let mut rowids: Vec<RowId> = vec![0];
        let _ = crack_in_two_with_rowids_pred(&mut data, &mut rowids, 1);
    }

    #[test]
    fn crack_in_three_basic() {
        let mut data = vec![5, 1, 9, 3, 7, 3, 0, 10, 4, 6];
        let mut expected = data.clone();
        expected.sort_unstable();
        let (a, b) = crack_in_three(&mut data, 3, 7);
        assert_partitioned_three(&data, a, b, 3, 7);
        assert_eq!(b - a, 5); // 5, 3, 3, 4, 6
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn crack_in_three_degenerate_range() {
        let mut data = vec![5, 1, 9, 3];
        let (a, b) = crack_in_three(&mut data, 6, 6);
        assert_eq!(a, b);
        assert!(data[..a].iter().all(|&v| v < 6));
        assert!(data[a..].iter().all(|&v| v >= 6));
        let (a, b) = crack_in_three(&mut data, 8, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_range_consistent_across_all_variants() {
        // All four crack_in_three variants must agree on the degenerate
        // interval: partition at `lo`, report an empty middle.
        let base = vec![5, 1, 9, 3, 7, 2, 8];
        for (lo, hi) in [(6, 6), (8, 2), (i64::MAX, i64::MIN)] {
            let expected_split = base.iter().filter(|&&v| v < lo).count();

            let mut d = base.clone();
            assert_eq!(
                crack_in_three(&mut d, lo, hi),
                (expected_split, expected_split)
            );

            let mut d = base.clone();
            assert_eq!(
                crack_in_three_pred(&mut d, lo, hi),
                (expected_split, expected_split)
            );
            assert_partitioned_two(&d, expected_split, lo);

            let mut d = base.clone();
            let mut ids: Vec<RowId> = (0..base.len() as RowId).collect();
            assert_eq!(
                crack_in_three_with_rowids(&mut d, &mut ids, lo, hi),
                (expected_split, expected_split)
            );

            let mut d = base.clone();
            let mut ids: Vec<RowId> = (0..base.len() as RowId).collect();
            assert_eq!(
                crack_in_three_with_rowids_pred(&mut d, &mut ids, lo, hi),
                (expected_split, expected_split)
            );
            assert_partitioned_two(&d, expected_split, lo);
        }
    }

    #[test]
    fn crack_in_three_whole_range() {
        let mut data = vec![2, 9, 4];
        let (a, b) = crack_in_three(&mut data, i64::MIN, i64::MAX);
        assert_eq!(a, 0);
        assert_eq!(b, 3);
    }

    #[test]
    fn crack_in_three_with_rowids_keeps_pairs_aligned() {
        let mut data = vec![50, 10, 90, 30, 70, 20];
        let mut rowids: Vec<RowId> = (0..6).collect();
        let mut expected: Vec<(Value, RowId)> =
            data.iter().copied().zip(rowids.iter().copied()).collect();
        let (a, b) = crack_in_three_with_rowids(&mut data, &mut rowids, 25, 75);
        assert_partitioned_three(&data, a, b, 25, 75);
        let mut pairs: Vec<(Value, RowId)> =
            data.iter().copied().zip(rowids.iter().copied()).collect();
        pairs.sort_unstable();
        expected.sort_unstable();
        assert_eq!(pairs, expected);
    }

    #[test]
    fn crack_in_three_empty_input() {
        let mut data: Vec<Value> = vec![];
        assert_eq!(crack_in_three(&mut data, 1, 5), (0, 0));
        assert_eq!(crack_in_three_pred(&mut data, 1, 5), (0, 0));
    }

    #[test]
    fn predicated_two_matches_branchy_split() {
        let samples: &[&[Value]] = &[
            &[],
            &[7],
            &[4; 10],
            &[5, 1, 9, 3, 7, 3, 0, 10],
            &[9, 8, 7, 6, 5, 4, 3, 2, 1, 0],
        ];
        for &sample in samples {
            for pivot in [-1, 0, 3, 5, 7, 100] {
                let mut branchy = sample.to_vec();
                let mut pred = sample.to_vec();
                let a = crack_in_two(&mut branchy, pivot);
                let b = crack_in_two_pred(&mut pred, pivot);
                assert_eq!(a, b, "split mismatch for {sample:?} at {pivot}");
                assert_partitioned_two(&pred, b, pivot);
                let mut x = branchy;
                let mut y = pred;
                x.sort_unstable();
                y.sort_unstable();
                assert_eq!(x, y, "multiset mismatch");
            }
        }
    }

    #[test]
    fn predicated_three_matches_branchy_boundaries() {
        let sample = vec![5, 1, 9, 3, 7, 3, 0, 10, 4, 6, 2, 8];
        for (lo, hi) in [(3, 7), (0, 11), (-5, 100), (4, 5), (7, 3)] {
            let mut branchy = sample.clone();
            let mut pred = sample.clone();
            assert_eq!(
                crack_in_three(&mut branchy, lo, hi),
                crack_in_three_pred(&mut pred, lo, hi),
                "boundary mismatch for [{lo},{hi})"
            );
            if lo < hi {
                let (a, b) = crack_in_three_pred(&mut pred.clone(), lo, hi);
                assert_partitioned_three(&pred, a, b, lo, hi);
            }
        }
    }

    #[test]
    fn predicated_rowids_stay_aligned() {
        let data = vec![50, 10, 90, 30, 70, 20, 40, 80];
        let mut d = data.clone();
        let mut ids: Vec<RowId> = (0..data.len() as RowId).collect();
        let split = crack_in_two_with_rowids_pred(&mut d, &mut ids, 45);
        assert_partitioned_two(&d, split, 45);
        for (&v, &id) in d.iter().zip(&ids) {
            assert_eq!(data[id as usize], v, "rowid must still address its value");
        }
        let mut d = data.clone();
        let mut ids: Vec<RowId> = (0..data.len() as RowId).collect();
        let (a, b) = crack_in_three_with_rowids_pred(&mut d, &mut ids, 25, 75);
        assert_partitioned_three(&d, a, b, 25, 75);
        for (&v, &id) in d.iter().zip(&ids) {
            assert_eq!(data[id as usize], v);
        }
    }

    #[test]
    fn kernel_policy_dispatch() {
        let auto = CrackKernel::auto();
        assert_eq!(auto.choose(0), KernelChoice::Branchy);
        assert_eq!(
            auto.choose(DEFAULT_PREDICATION_THRESHOLD - 1),
            KernelChoice::Branchy
        );
        assert_eq!(
            auto.choose(DEFAULT_PREDICATION_THRESHOLD),
            KernelChoice::Predicated
        );
        assert_eq!(CrackKernel::Branchy.choose(1 << 30), KernelChoice::Branchy);
        assert_eq!(CrackKernel::Predicated.choose(1), KernelChoice::Predicated);
        assert_eq!(CrackKernel::default(), CrackKernel::auto());
        assert_eq!(CrackKernel::Predicated.to_string(), "predicated");
        assert_eq!(CrackKernel::auto().name(), "auto");
    }

    #[test]
    fn kernel_policy_methods_partition_correctly() {
        for kernel in [
            CrackKernel::Branchy,
            CrackKernel::Predicated,
            CrackKernel::Auto { branchy_below: 4 },
        ] {
            let mut data = vec![5, 1, 9, 3, 7, 3, 0, 10];
            let split = kernel.crack_in_two(&mut data, 5);
            assert_eq!(split, 4, "{kernel}");
            assert_partitioned_two(&data, split, 5);

            let mut data = vec![5, 1, 9, 3, 7, 3, 0, 10];
            let (a, b) = kernel.crack_in_three(&mut data, 3, 7);
            assert_partitioned_three(&data, a, b, 3, 7);

            let base = vec![50, 10, 90, 30, 70, 20];
            let mut data = base.clone();
            let mut ids: Vec<RowId> = (0..6).collect();
            let split = kernel.crack_in_two_with_rowids(&mut data, &mut ids, 40);
            assert_partitioned_two(&data, split, 40);
            for (&v, &id) in data.iter().zip(&ids) {
                assert_eq!(base[id as usize], v);
            }

            let mut data = base.clone();
            let mut ids: Vec<RowId> = (0..6).collect();
            let (a, b) = kernel.crack_in_three_with_rowids(&mut data, &mut ids, 25, 75);
            assert_partitioned_three(&data, a, b, 25, 75);
        }
    }

    fn assert_partitioned_k(data: &[Value], boundaries: &[usize], pivots: &[Value]) {
        assert_eq!(boundaries.len(), pivots.len());
        let mut prev = 0usize;
        for (i, (&b, &p)) in boundaries.iter().zip(pivots).enumerate() {
            assert!(b >= prev, "boundaries must be non-decreasing");
            assert!(
                data[..b].iter().all(|&v| v < p),
                "values before boundary {i} must be < {p}"
            );
            assert!(
                data[b..].iter().all(|&v| v >= p),
                "values after boundary {i} must be >= {p}"
            );
            prev = b;
        }
    }

    #[test]
    fn crack_in_k_matches_repeated_crack_in_two() {
        let base: Vec<Value> = vec![13, 16, 4, 9, 2, 12, 7, 1, 19, 3, 14, 11, 8, 6, 9, 4];
        for pivots in [
            vec![5],
            vec![3, 9],
            vec![2, 7, 12, 15],
            vec![-10, 0, 4, 4 + 1, 100],
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        ] {
            let mut expected = Vec::new();
            for &p in &pivots {
                let mut d = base.clone();
                expected.push(crack_in_two(&mut d, p));
            }
            type KernelFn = fn(&mut [Value], &[Value]) -> Vec<usize>;
            let forms: [(&str, KernelFn); 2] = [("branchy", crack_in_k), ("pred", crack_in_k_pred)];
            for (name, kernel) in forms {
                let mut data = base.clone();
                let boundaries = kernel(&mut data, &pivots);
                assert_eq!(boundaries, expected, "{name} boundaries for {pivots:?}");
                assert_partitioned_k(&data, &boundaries, &pivots);
                let mut sorted = data.clone();
                sorted.sort_unstable();
                let mut orig = base.clone();
                orig.sort_unstable();
                assert_eq!(sorted, orig, "{name} must preserve the multiset");
            }
        }
    }

    #[test]
    fn crack_in_k_edge_cases() {
        // Empty pivot list: nothing moves, nothing returned.
        let mut d = vec![3, 1, 2];
        assert!(crack_in_k(&mut d, &[]).is_empty());
        assert_eq!(d, vec![3, 1, 2]);
        // Empty data: all boundaries are 0.
        let mut empty: Vec<Value> = vec![];
        assert_eq!(crack_in_k(&mut empty, &[1, 5]), vec![0, 0]);
        // All values identical: boundaries snap to the ends.
        let mut same = vec![4; 8];
        assert_eq!(crack_in_k_pred(&mut same, &[4, 5]), vec![0, 8]);
        // Pivots outside the data range.
        let mut d = vec![10, 20, 30];
        assert_eq!(crack_in_k(&mut d, &[-5, 100]), vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn crack_in_k_rejects_unsorted_pivots() {
        let mut d = vec![1, 2, 3];
        let _ = crack_in_k(&mut d, &[5, 5]);
    }

    #[test]
    fn crack_in_k_with_rowids_keeps_pairs_aligned() {
        let base = vec![50, 10, 90, 30, 70, 20, 40, 80, 60, 15];
        let pivots = vec![25, 45, 75];
        for pred in [false, true] {
            let mut d = base.clone();
            let mut ids: Vec<RowId> = (0..base.len() as RowId).collect();
            let boundaries = if pred {
                crack_in_k_with_rowids_pred(&mut d, &mut ids, &pivots)
            } else {
                crack_in_k_with_rowids(&mut d, &mut ids, &pivots)
            };
            assert_partitioned_k(&d, &boundaries, &pivots);
            for (&v, &id) in d.iter().zip(&ids) {
                assert_eq!(base[id as usize], v, "rowid must still address its value");
            }
        }
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn crack_in_k_with_rowids_rejects_mismatched_lengths() {
        let mut d = vec![1, 2];
        let mut ids: Vec<RowId> = vec![0];
        let _ = crack_in_k_with_rowids(&mut d, &mut ids, &[1]);
    }

    #[test]
    fn crack_in_k_kernel_policy_dispatch() {
        for kernel in [
            CrackKernel::Branchy,
            CrackKernel::Predicated,
            CrackKernel::Auto { branchy_below: 4 },
        ] {
            let base = vec![5, 1, 9, 3, 7, 3, 0, 10, 4, 6];
            let pivots = vec![3, 7];
            let mut d = base.clone();
            let boundaries = kernel.crack_in_k(&mut d, &pivots);
            assert_partitioned_k(&d, &boundaries, &pivots);
            let mut d = base.clone();
            let mut ids: Vec<RowId> = (0..base.len() as RowId).collect();
            let boundaries = kernel.crack_in_k_with_rowids(&mut d, &mut ids, &pivots);
            assert_partitioned_k(&d, &boundaries, &pivots);
            for (&v, &id) in d.iter().zip(&ids) {
                assert_eq!(base[id as usize], v);
            }
        }
    }

    fn slice_sum(values: &[Value]) -> i128 {
        values.iter().map(|&v| i128::from(v)).sum()
    }

    #[test]
    fn sum_fused_two_way_matches_plain_and_scan() {
        let samples: &[&[Value]] = &[
            &[],
            &[7],
            &[4; 10],
            &[5, 1, 9, 3, 7, 3, 0, 10],
            &[9, 8, 7, 6, 5, 4, 3, 2, 1, 0],
            &[i64::MAX, i64::MIN, 0, i64::MAX, i64::MIN],
        ];
        for &sample in samples {
            for pivot in [i64::MIN, -1, 0, 3, 5, 7, 100, i64::MAX] {
                let mut plain = sample.to_vec();
                let expected_split = crack_in_two(&mut plain, pivot);
                let expected_lo = slice_sum(&plain[..expected_split]);
                let expected_total = slice_sum(sample);
                for fused in [crack_in_two_sums, crack_in_two_sums_pred] {
                    let mut d = sample.to_vec();
                    let got = fused(&mut d, pivot);
                    assert_eq!(got.split, expected_split, "{sample:?} at {pivot}");
                    assert_eq!(got.lo_sum, expected_lo, "{sample:?} at {pivot}");
                    assert_eq!(got.total_sum, expected_total, "{sample:?} at {pivot}");
                    assert_eq!(got.hi_sum(), expected_total - expected_lo);
                    assert_partitioned_two(&d, got.split, pivot);
                }
                // Row-id forms: same sums, pairs stay aligned.
                for pred in [false, true] {
                    let mut d = sample.to_vec();
                    let mut ids: Vec<RowId> = (0..sample.len() as RowId).collect();
                    let got = if pred {
                        crack_in_two_with_rowids_sums_pred(&mut d, &mut ids, pivot)
                    } else {
                        crack_in_two_with_rowids_sums(&mut d, &mut ids, pivot)
                    };
                    assert_eq!((got.split, got.lo_sum), (expected_split, expected_lo));
                    for (&v, &id) in d.iter().zip(&ids) {
                        assert_eq!(sample[id as usize], v);
                    }
                }
            }
        }
    }

    #[test]
    fn sum_fused_three_way_matches_plain_and_scan() {
        let sample = vec![5, 1, 9, 3, 7, 3, 0, 10, 4, 6, 2, 8];
        for (lo, hi) in [(3, 7), (0, 11), (-5, 100), (4, 5), (7, 3), (6, 6)] {
            let mut plain = sample.clone();
            let (a, b) = crack_in_three(&mut plain, lo, hi);
            let expected = [
                slice_sum(&plain[..a]),
                slice_sum(&plain[a..b]),
                slice_sum(&plain[b..]),
            ];
            for fused in [crack_in_three_sums, crack_in_three_sums_pred] {
                let mut d = sample.clone();
                let got = fused(&mut d, lo, hi);
                assert_eq!((got.a, got.b), (a, b), "[{lo},{hi})");
                assert_eq!(got.sums, expected, "[{lo},{hi})");
            }
            for pred in [false, true] {
                let mut d = sample.clone();
                let mut ids: Vec<RowId> = (0..sample.len() as RowId).collect();
                let got = if pred {
                    crack_in_three_with_rowids_sums_pred(&mut d, &mut ids, lo, hi)
                } else {
                    crack_in_three_with_rowids_sums(&mut d, &mut ids, lo, hi)
                };
                assert_eq!((got.a, got.b), (a, b), "[{lo},{hi}) rowids pred={pred}");
                assert_eq!(got.sums, expected);
                for (&v, &id) in d.iter().zip(&ids) {
                    assert_eq!(sample[id as usize], v);
                }
            }
        }
    }

    #[test]
    fn sum_fused_k_way_matches_plain_and_scan() {
        let base: Vec<Value> = vec![13, 16, 4, 9, 2, 12, 7, 1, 19, 3, 14, 11, 8, 6, 9, 4];
        for pivots in [
            vec![5],
            vec![3, 9],
            vec![2, 7, 12, 15],
            vec![-10, 0, 4, 5, 100],
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        ] {
            let mut plain = base.clone();
            let expected_bounds = crack_in_k(&mut plain, &pivots);
            let mut cuts = vec![0usize];
            cuts.extend_from_slice(&expected_bounds);
            cuts.push(base.len());
            let expected_sums: Vec<i128> = cuts
                .windows(2)
                .map(|w| slice_sum(&plain[w[0]..w[1]]))
                .collect();
            for fused in [crack_in_k_sums, crack_in_k_sums_pred] {
                let mut d = base.clone();
                let got = fused(&mut d, &pivots);
                assert_eq!(got.boundaries, expected_bounds, "{pivots:?}");
                assert_eq!(got.segment_sums, expected_sums, "{pivots:?}");
            }
            for pred in [false, true] {
                let mut d = base.clone();
                let mut ids: Vec<RowId> = (0..base.len() as RowId).collect();
                let got = if pred {
                    crack_in_k_with_rowids_sums_pred(&mut d, &mut ids, &pivots)
                } else {
                    crack_in_k_with_rowids_sums(&mut d, &mut ids, &pivots)
                };
                assert_eq!(got.boundaries, expected_bounds);
                assert_eq!(got.segment_sums, expected_sums);
                for (&v, &id) in d.iter().zip(&ids) {
                    assert_eq!(base[id as usize], v);
                }
            }
        }
        // Empty pivot list and empty data.
        let mut d = vec![3, 1, 2];
        let got = crack_in_k_sums(&mut d, &[]);
        assert!(got.boundaries.is_empty() && got.segment_sums.is_empty());
        let mut empty: Vec<Value> = vec![];
        let got = crack_in_k_sums(&mut empty, &[1, 5]);
        assert_eq!(got.boundaries, vec![0, 0]);
        assert_eq!(got.segment_sums, vec![0, 0, 0]);
    }

    #[test]
    fn sum_fused_kernel_policy_dispatch() {
        for kernel in [
            CrackKernel::Branchy,
            CrackKernel::Predicated,
            CrackKernel::Auto { branchy_below: 4 },
        ] {
            let base = vec![5, 1, 9, 3, 7, 3, 0, 10, 4, 6];
            let total = slice_sum(&base);

            let mut d = base.clone();
            let two = kernel.crack_in_two_sums(&mut d, 5);
            assert_eq!(two.split, 5, "{kernel}");
            assert_eq!(two.total_sum, total);
            assert_eq!(two.lo_sum, slice_sum(&d[..two.split]));

            let mut d = base.clone();
            let three = kernel.crack_in_three_sums(&mut d, 3, 7);
            assert_eq!(three.sums.iter().sum::<i128>(), total);

            let mut d = base.clone();
            let k = kernel.crack_in_k_sums(&mut d, &[3, 7]);
            assert_eq!(k.segment_sums.iter().sum::<i128>(), total);
            assert_eq!(k.boundaries, vec![three.a, three.b]);
            assert_eq!(k.segment_sums, three.sums.to_vec());

            let mut d = base.clone();
            let mut ids: Vec<RowId> = (0..base.len() as RowId).collect();
            let two = kernel.crack_in_two_with_rowids_sums(&mut d, &mut ids, 5);
            assert_eq!(two.total_sum, total);
            let mut d = base.clone();
            let mut ids: Vec<RowId> = (0..base.len() as RowId).collect();
            let three = kernel.crack_in_three_with_rowids_sums(&mut d, &mut ids, 3, 7);
            assert_eq!(three.sums.iter().sum::<i128>(), total);
            let mut d = base.clone();
            let mut ids: Vec<RowId> = (0..base.len() as RowId).collect();
            let k = kernel.crack_in_k_with_rowids_sums(&mut d, &mut ids, &[3, 7]);
            assert_eq!(k.segment_sums.iter().sum::<i128>(), total);
        }
    }

    #[test]
    fn dispatch_counters_accumulate() {
        let mut d = KernelDispatches::default();
        d.record(KernelChoice::Branchy);
        d.record(KernelChoice::Predicated);
        d.record(KernelChoice::Predicated);
        assert_eq!(d.branchy, 1);
        assert_eq!(d.predicated, 2);
        assert_eq!(d.total(), 3);
        let earlier = KernelDispatches {
            branchy: 1,
            predicated: 0,
        };
        let delta = d.since(earlier);
        assert_eq!(
            delta,
            KernelDispatches {
                branchy: 0,
                predicated: 2
            }
        );
        let mut acc = KernelDispatches::default();
        acc.add(delta);
        acc.add(delta);
        assert_eq!(acc.predicated, 4);
    }
}
