//! Adaptive merging: the partition/merge-style alternative to cracking.
//!
//! Adaptive merging (Graefe & Kuno, EDBT 2010) performs the heavy work up
//! front in a different way than cracking: the column is split into runs
//! that are each sorted once (like the first pass of an external merge
//! sort); every query then *merges* the qualifying key ranges out of the
//! runs into a final, fully sorted index. Ranges that have been merged once
//! are served directly from the final index; the runs shrink monotonically.
//!
//! The paper cites this family ("partition-merge -like logic", [9, 14]) as
//! one of the adaptive-indexing flavours a holistic kernel should be able to
//! host, and it is the natural comparison point for the ablation benches.

use crate::Value;

/// Statistics describing how much work adaptive merging has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Values moved from runs into the final index so far.
    pub values_merged: u64,
    /// Number of queries answered.
    pub queries: u64,
    /// Values compared/inspected while answering queries (work proxy).
    pub values_touched: u64,
}

/// An adaptive-merging index over one column.
#[derive(Debug, Clone)]
pub struct AdaptiveMergingIndex {
    /// Sorted runs still holding un-merged values.
    runs: Vec<Vec<Value>>,
    /// The final index: values merged so far, kept sorted.
    merged: Vec<Value>,
    /// Value ranges `[lo, hi)` that are fully covered by `merged`.
    covered: Vec<(Value, Value)>,
    /// Aggregate cache over `merged`: `merged_prefix[i]` is the sum of
    /// `merged[..i]`. Rebuilt lazily (`prefix_dirty`) after merges, so
    /// covered count/sum queries are answered from metadata — two binary
    /// searches and a prefix difference, zero value reads — the
    /// merging-side analogue of the cracker's per-piece sums.
    merged_prefix: Vec<i128>,
    /// Whether `merged_prefix` is stale relative to `merged`.
    prefix_dirty: bool,
    stats: MergeStats,
}

impl AdaptiveMergingIndex {
    /// Builds the initial run structure: the input is chopped into runs of
    /// `run_size` values and each run is sorted (the "partition" phase).
    ///
    /// # Panics
    ///
    /// Panics if `run_size == 0`.
    #[must_use]
    pub fn new(values: &[Value], run_size: usize) -> Self {
        assert!(run_size > 0, "run size must be positive");
        let mut runs: Vec<Vec<Value>> = values
            .chunks(run_size)
            .map(|chunk| {
                let mut run = chunk.to_vec();
                run.sort_unstable();
                run
            })
            .collect();
        runs.retain(|r| !r.is_empty());
        AdaptiveMergingIndex {
            runs,
            merged: Vec::new(),
            covered: Vec::new(),
            merged_prefix: vec![0],
            prefix_dirty: false,
            stats: MergeStats::default(),
        }
    }

    /// Number of runs still holding values.
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.runs.iter().filter(|r| !r.is_empty()).count()
    }

    /// Number of values already merged into the final index.
    #[must_use]
    pub fn merged_len(&self) -> usize {
        self.merged.len()
    }

    /// Work statistics.
    #[must_use]
    pub fn stats(&self) -> MergeStats {
        self.stats
    }

    /// Whether the value range `[lo, hi)` is already fully served by the
    /// final index (no run access needed).
    #[must_use]
    pub fn is_covered(&self, lo: Value, hi: Value) -> bool {
        if hi <= lo {
            return true;
        }
        // Merge-coalesce the covered ranges lazily at query time instead of
        // maintaining a canonical interval set.
        let mut ranges: Vec<(Value, Value)> = self.covered.clone();
        ranges.sort_unstable();
        let mut cursor = lo;
        for (a, b) in ranges {
            if b <= cursor {
                continue;
            }
            if a > cursor {
                return false;
            }
            cursor = cursor.max(b);
            if cursor >= hi {
                return true;
            }
        }
        cursor >= hi
    }

    /// Makes `[lo, hi)` fully served by the final index, draining the
    /// qualifying values out of the runs if needed (the merge step shared
    /// by all query flavours).
    fn ensure_merged(&mut self, lo: Value, hi: Value) {
        if self.is_covered(lo, hi) {
            return;
        }
        // Drain qualifying values from every run into the final index.
        let mut harvested: Vec<Value> = Vec::new();
        for run in &mut self.runs {
            let start = run.partition_point(|&v| v < lo);
            let end = run.partition_point(|&v| v < hi);
            if end > start {
                harvested.extend(run.drain(start..end));
            }
            self.stats.values_touched += 2 * (run.len().max(1) as u64).ilog2() as u64 + 1;
        }
        self.stats.values_merged += harvested.len() as u64;
        if !harvested.is_empty() {
            harvested.sort_unstable();
            let merged = std::mem::take(&mut self.merged);
            self.merged = merge_sorted(merged, harvested);
            self.prefix_dirty = true;
        }
        self.covered.push((lo, hi));
    }

    /// The `merged` sub-range holding `[lo, hi)` (two binary searches).
    fn merged_bounds(&self, lo: Value, hi: Value) -> (usize, usize) {
        (
            self.merged.partition_point(|&v| v < lo),
            self.merged.partition_point(|&v| v < hi),
        )
    }

    /// Rebuilds the prefix-sum cache if merges made it stale.
    fn refresh_prefix(&mut self) {
        if !self.prefix_dirty {
            return;
        }
        self.merged_prefix.clear();
        self.merged_prefix.reserve(self.merged.len() + 1);
        self.merged_prefix.push(0);
        let mut acc = 0i128;
        for &v in &self.merged {
            acc += i128::from(v);
            self.merged_prefix.push(acc);
        }
        self.prefix_dirty = false;
    }

    /// Answers the range query `[lo, hi)`, returning the qualifying values
    /// in sorted order. Values that had not been merged yet are moved out of
    /// their runs into the final index as a side effect.
    pub fn query(&mut self, lo: Value, hi: Value) -> Vec<Value> {
        self.stats.queries += 1;
        if hi <= lo {
            return Vec::new();
        }
        self.ensure_merged(lo, hi);
        let (start, end) = self.merged_bounds(lo, hi);
        self.stats.values_touched += (end - start) as u64;
        self.merged[start..end].to_vec()
    }

    /// Counts the qualifying values for `[lo, hi)` (merging as a side
    /// effect). Once the range is covered this is pure metadata: two binary
    /// searches on the final index, no value reads.
    pub fn query_count(&mut self, lo: Value, hi: Value) -> u64 {
        self.stats.queries += 1;
        if hi <= lo {
            return 0;
        }
        self.ensure_merged(lo, hi);
        let (start, end) = self.merged_bounds(lo, hi);
        (end - start) as u64
    }

    /// Sums the qualifying values for `[lo, hi)` (merging as a side
    /// effect). Served from the lazily rebuilt prefix-sum cache: once the
    /// range is covered and the cache is fresh, the answer is a prefix
    /// difference — zero value reads, the merging-side analogue of the
    /// cracker's per-piece aggregate cache.
    pub fn query_sum(&mut self, lo: Value, hi: Value) -> i128 {
        self.stats.queries += 1;
        if hi <= lo {
            return 0;
        }
        self.ensure_merged(lo, hi);
        self.refresh_prefix();
        let (start, end) = self.merged_bounds(lo, hi);
        self.merged_prefix[end] - self.merged_prefix[start]
    }

    /// Whether every value has been merged into the final index.
    #[must_use]
    pub fn fully_merged(&self) -> bool {
        self.runs.iter().all(Vec::is_empty)
    }
}

/// Merges two sorted vectors into one sorted vector.
fn merge_sorted(a: Vec<Value>, b: Vec<Value>) -> Vec<Value> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<Value> {
        vec![42, 7, 19, 3, 88, 23, 51, 64, 5, 91, 30, 12, 77, 1, 60, 45]
    }

    fn scan_sorted(values: &[Value], lo: Value, hi: Value) -> Vec<Value> {
        let mut out: Vec<Value> = values
            .iter()
            .copied()
            .filter(|&v| v >= lo && v < hi)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn initial_partition_creates_sorted_runs() {
        let idx = AdaptiveMergingIndex::new(&data(), 4);
        assert_eq!(idx.run_count(), 4);
        assert_eq!(idx.merged_len(), 0);
        assert!(!idx.fully_merged());
    }

    #[test]
    fn query_matches_scan_and_merges() {
        let values = data();
        let mut idx = AdaptiveMergingIndex::new(&values, 4);
        let result = idx.query(10, 60);
        assert_eq!(result, scan_sorted(&values, 10, 60));
        assert_eq!(idx.merged_len(), result.len());
        assert!(idx.is_covered(10, 60));
        assert!(idx.is_covered(20, 30));
        assert!(!idx.is_covered(0, 100));
        // Repeated query is served from the final index and stays correct.
        let again = idx.query(10, 60);
        assert_eq!(again, result);
        assert_eq!(idx.stats().queries, 2);
    }

    #[test]
    fn overlapping_queries_do_not_duplicate_values() {
        let values = data();
        let mut idx = AdaptiveMergingIndex::new(&values, 4);
        let _ = idx.query(10, 60);
        let r = idx.query(40, 80);
        assert_eq!(r, scan_sorted(&values, 40, 80));
        let r = idx.query(0, 100);
        assert_eq!(r, scan_sorted(&values, 0, 100));
        assert!(idx.fully_merged());
        assert_eq!(idx.merged_len(), values.len());
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let mut idx = AdaptiveMergingIndex::new(&data(), 8);
        assert!(idx.query(50, 50).is_empty());
        assert!(idx.query(80, 20).is_empty());
        assert_eq!(idx.query_count(1000, 2000), 0);
        assert!(idx.is_covered(9, 3));
    }

    #[test]
    fn empty_input() {
        let mut idx = AdaptiveMergingIndex::new(&[], 16);
        assert_eq!(idx.run_count(), 0);
        assert!(idx.fully_merged());
        assert!(idx.query(0, 10).is_empty());
    }

    #[test]
    fn coverage_coalesces_adjacent_ranges() {
        let values: Vec<Value> = (0..100).collect();
        let mut idx = AdaptiveMergingIndex::new(&values, 10);
        let _ = idx.query(0, 30);
        let _ = idx.query(30, 60);
        assert!(idx.is_covered(0, 60));
        assert!(idx.is_covered(10, 55));
        assert!(!idx.is_covered(0, 61));
    }

    #[test]
    fn merge_work_decreases_over_time() {
        let values: Vec<Value> = (0..10_000).rev().collect();
        let mut idx = AdaptiveMergingIndex::new(&values, 1000);
        let _ = idx.query(0, 5000);
        let merged_after_first = idx.stats().values_merged;
        let _ = idx.query(1000, 4000); // fully covered, no new merge work
        assert_eq!(idx.stats().values_merged, merged_after_first);
        let _ = idx.query(0, 10_000);
        assert_eq!(idx.stats().values_merged, 10_000);
        assert!(idx.fully_merged());
    }

    #[test]
    #[should_panic(expected = "run size must be positive")]
    fn zero_run_size_panics() {
        let _ = AdaptiveMergingIndex::new(&[1, 2, 3], 0);
    }

    #[test]
    fn query_sum_matches_scan_and_stays_coherent_across_merges() {
        let values = data();
        let mut idx = AdaptiveMergingIndex::new(&values, 4);
        let scan = |lo: Value, hi: Value| -> i128 {
            values
                .iter()
                .filter(|&&v| v >= lo && v < hi)
                .map(|&v| i128::from(v))
                .sum()
        };
        // Cold: the sum query itself triggers the merge.
        assert_eq!(idx.query_sum(10, 60), scan(10, 60));
        // Covered: answered from the prefix cache; later merges must
        // invalidate and rebuild it.
        assert_eq!(idx.query_sum(20, 50), scan(20, 50));
        assert_eq!(idx.query_sum(40, 95), scan(40, 95));
        assert_eq!(idx.query_sum(0, 100), scan(0, 100));
        assert!(idx.fully_merged());
        assert_eq!(idx.query_sum(0, 100), scan(0, 100));
        // Degenerate ranges.
        assert_eq!(idx.query_sum(50, 50), 0);
        assert_eq!(idx.query_sum(80, 20), 0);
        // Counts agree with the materializing path.
        assert_eq!(idx.query_count(10, 60), idx.query(10, 60).len() as u64);
    }
}
