//! Pieces: contiguous, value-bounded regions of a cracker column.

use std::sync::Arc;

use holistic_storage::PrefixSums;

use crate::Value;

/// A piece of a cracker column.
///
/// The piece covers positions `[start, end)` of the cracked array and is
/// guaranteed to only contain values `v` with `lo <= v < hi`, where `None`
/// bounds mean "unbounded". Physical order of pieces equals value order:
/// every value in a piece is smaller than every value in the next piece.
///
/// # Aggregate cache
///
/// `sum` caches the sum of the piece's values. `count` needs no cache: it is
/// implicit in the extent (`end - start`). Cached sums are produced as fused
/// by-products of the crack kernels' partitioning sweeps (never by an extra
/// pass over the data) and are patched by the update-merge path, so a
/// `Some` sum is *always* trusted — the structural invariant, checked by
/// [`Piece::validate`], is that it equals the sum of `data[start..end]`.
/// `None` means unknown. Because a cached sum is fully determined by the
/// piece's contents, it participates in equality: two identically cracked
/// columns have identical cached sums.
///
/// # Prefix sums on sorted pieces
///
/// `prefix` extends the cache to *interior* ranges of **sorted** pieces: a
/// shared [`PrefixSums`] array (absolute positions) built once over a sorted
/// region, under which any positional sub-range sums with one subtraction —
/// so an aggregate whose bounds binary-search into the piece needs zero
/// data-array reads. Splitting a sorted piece moves no data, so all pieces
/// split out of it share the parent's array through the `Arc`; a piece that
/// loses sortedness (or whose extent shifts under ripple updates) drops the
/// prefix. A `Some` prefix is as trusted as a `Some` sum: [`Piece::validate`]
/// enforces `prefix[i+1] - prefix[i] == data[i]` across the piece's extent.
/// Prefix arrays participate in equality by content (not by pointer), so
/// identically refined columns still compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Piece {
    /// First position covered by the piece (inclusive).
    pub start: usize,
    /// One past the last position covered by the piece (exclusive).
    pub end: usize,
    /// Inclusive lower bound on values in the piece, `None` = unbounded.
    pub lo: Option<Value>,
    /// Exclusive upper bound on values in the piece, `None` = unbounded.
    pub hi: Option<Value>,
    /// Whether the piece is known to be internally sorted.
    pub sorted: bool,
    /// Cached sum of the piece's values, `None` = unknown.
    pub sum: Option<i128>,
    /// Shared prefix-sum array covering (at least) this piece's extent,
    /// `None` = not built. Only meaningful on sorted regions.
    pub prefix: Option<Arc<PrefixSums>>,
}

impl Piece {
    /// Creates a piece spanning `[start, end)` with unbounded value range.
    #[must_use]
    pub fn unbounded(start: usize, end: usize) -> Self {
        Piece {
            start,
            end,
            lo: None,
            hi: None,
            sorted: false,
            sum: None,
            prefix: None,
        }
    }

    /// Number of positions covered by the piece.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the piece covers no positions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether a value can live in this piece according to its bounds.
    #[must_use]
    pub fn admits(&self, v: Value) -> bool {
        self.lo.is_none_or(|lo| v >= lo) && self.hi.is_none_or(|hi| v < hi)
    }

    /// The prefix-sum array, if it is present *and* covers this piece's
    /// extent. This is the only form in which the aggregate paths consume
    /// `prefix`; a stale array that no longer covers the piece is treated
    /// as absent.
    #[must_use]
    pub fn covering_prefix(&self) -> Option<&Arc<PrefixSums>> {
        self.prefix
            .as_ref()
            .filter(|p| p.covers(&(self.start..self.end)))
    }

    /// Checks that every value in `data[start..end]` respects the bounds
    /// and that a cached sum or prefix-sum array, if present, matches the
    /// data.
    #[must_use]
    pub fn validate(&self, data: &[Value]) -> bool {
        if self.end > data.len() || self.start > self.end {
            return false;
        }
        let slice = &data[self.start..self.end];
        if !slice.iter().all(|&v| self.admits(v)) {
            return false;
        }
        if self.sorted && !slice.windows(2).all(|w| w[0] <= w[1]) {
            return false;
        }
        if let Some(sum) = self.sum {
            if sum != slice.iter().map(|&v| i128::from(v)).sum::<i128>() {
                return false;
            }
        }
        if let Some(prefix) = &self.prefix {
            if !prefix.covers(&(self.start..self.end)) {
                return false;
            }
            for (i, &v) in slice.iter().enumerate() {
                let pos = self.start + i;
                if prefix.sum_range(pos..pos + 1) != i128::from(v) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_piece_admits_anything() {
        let p = Piece::unbounded(0, 10);
        assert_eq!(p.len(), 10);
        assert!(!p.is_empty());
        assert!(p.admits(i64::MIN));
        assert!(p.admits(0));
        assert!(p.admits(i64::MAX));
    }

    #[test]
    fn bounds_are_half_open() {
        let p = Piece {
            lo: Some(10),
            hi: Some(20),
            ..Piece::unbounded(0, 4)
        };
        assert!(p.admits(10));
        assert!(p.admits(19));
        assert!(!p.admits(20));
        assert!(!p.admits(9));
    }

    #[test]
    fn validate_checks_values_and_extent() {
        let data = vec![12, 15, 11, 19];
        let good = Piece {
            lo: Some(10),
            hi: Some(20),
            ..Piece::unbounded(0, 4)
        };
        assert!(good.validate(&data));
        let bad_bound = Piece {
            lo: Some(13),
            ..good.clone()
        };
        assert!(!bad_bound.validate(&data));
        let bad_extent = Piece { end: 5, ..good };
        assert!(!bad_extent.validate(&data));
    }

    #[test]
    fn validate_checks_sortedness_flag() {
        let data = vec![1, 3, 2];
        let p = Piece {
            sorted: true,
            ..Piece::unbounded(0, 3)
        };
        assert!(!p.validate(&data));
        let sorted_data = vec![1, 2, 3];
        assert!(p.validate(&sorted_data));
    }

    #[test]
    fn validate_checks_cached_sum() {
        let data = vec![12, 15, 11, 19];
        let good = Piece {
            lo: Some(10),
            hi: Some(20),
            sum: Some(12 + 15 + 11 + 19),
            ..Piece::unbounded(0, 4)
        };
        assert!(good.validate(&data));
        let stale = Piece {
            sum: Some(999),
            ..good.clone()
        };
        assert!(!stale.validate(&data));
        // An unknown sum is always admissible.
        let unknown = Piece { sum: None, ..good };
        assert!(unknown.validate(&data));
        // Empty pieces must cache zero (or nothing).
        let empty = Piece {
            sum: Some(0),
            ..Piece::unbounded(2, 2)
        };
        assert!(empty.validate(&data));
    }

    #[test]
    fn validate_checks_prefix_sums() {
        let data = vec![3, 7, 7, 12];
        let good = Piece {
            sorted: true,
            prefix: Some(Arc::new(PrefixSums::build(0, &data))),
            ..Piece::unbounded(0, 4)
        };
        assert!(good.validate(&data));
        assert!(good.covering_prefix().is_some());
        // A sub-piece sharing the parent's array still validates.
        let child = Piece {
            ..Piece::unbounded(1, 3)
        };
        let child = Piece {
            sorted: true,
            prefix: good.prefix.clone(),
            ..child
        };
        assert!(child.validate(&data));
        // A prefix built over different data is rejected.
        let stale = Piece {
            prefix: Some(Arc::new(PrefixSums::build(0, &[1, 1, 1, 1]))),
            ..good.clone()
        };
        assert!(!stale.validate(&data));
        // A prefix that no longer covers the extent is rejected by validate
        // and invisible to covering_prefix.
        let shifted = Piece {
            prefix: Some(Arc::new(PrefixSums::build(2, &data[2..3]))),
            ..good
        };
        assert!(shifted.covering_prefix().is_none());
        assert!(!shifted.validate(&data));
    }

    #[test]
    fn empty_piece() {
        let p = Piece::unbounded(5, 5);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert!(p.validate(&[0; 10]));
    }
}
