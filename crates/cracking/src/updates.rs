//! Cracking under updates.
//!
//! Following "Updating a Cracked Database" (SIGMOD 2007), updates never
//! touch the cracked array directly when they arrive. Inserts and deletes
//! are queued in a pending [`UpdateBuffer`]; when a query touches a value
//! range, the pending updates that fall inside that range are merged into
//! the cracker column using *ripple insertion / deletion*: the affected
//! piece grows or shrinks by one slot and the displacement is rippled
//! through the following pieces (each piece rotates one element) so that all
//! piece invariants keep holding without rewriting the column.

use std::ops::Range;

use holistic_storage::UpdateBuffer;

use crate::cracker::CrackerColumn;
use crate::{RowId, Value};

/// Largest sorted piece (in values) whose prefix-sum array ripple updates
/// keep alive by patching. Patching costs O(piece) per merged update (an
/// in-piece rotate plus a rebuilt prefix array, 16 bytes per value), which
/// is the price of any sorted array under point updates — worth paying
/// while a patch stays in the sub-millisecond range, but unbounded on a
/// multi-million-value piece absorbing an update stream. Above this cap
/// the ripple falls back to the O(1) hole placement (the pre-prefix
/// behavior: the piece gives up `sorted` and its prefix; cracking takes
/// over, and idle-time seeding re-covers whatever stays sorted).
const MAX_PATCHED_PIECE_LEN: usize = 1 << 18;

/// A cracker column plus its pending-update buffer.
#[derive(Debug, Clone)]
pub struct UpdatableCrackerColumn {
    cracker: CrackerColumn,
    pending: UpdateBuffer,
    next_rowid: u32,
    merged_inserts: u64,
    merged_deletes: u64,
}

impl UpdatableCrackerColumn {
    /// Creates an updatable cracker column from raw values (no row ids).
    #[must_use]
    pub fn from_values(values: Vec<Value>) -> Self {
        let next_rowid = values.len() as u32;
        UpdatableCrackerColumn {
            cracker: CrackerColumn::from_values(values),
            pending: UpdateBuffer::new(),
            next_rowid,
            merged_inserts: 0,
            merged_deletes: 0,
        }
    }

    /// Creates an updatable cracker column carrying row ids.
    #[must_use]
    pub fn from_values_with_rowids(values: Vec<Value>) -> Self {
        let next_rowid = values.len() as u32;
        UpdatableCrackerColumn {
            cracker: CrackerColumn::from_values_with_rowids(values),
            pending: UpdateBuffer::new(),
            next_rowid,
            merged_inserts: 0,
            merged_deletes: 0,
        }
    }

    /// The underlying cracker column.
    #[must_use]
    pub fn cracker(&self) -> &CrackerColumn {
        &self.cracker
    }

    /// Queues a value for insertion.
    pub fn insert(&mut self, v: Value) {
        self.pending.insert(v);
    }

    /// Queues a value for deletion.
    pub fn delete(&mut self, v: Value) {
        self.pending.delete(v);
    }

    /// Number of pending (unmerged) inserts.
    #[must_use]
    pub fn pending_inserts(&self) -> usize {
        self.pending.pending_inserts()
    }

    /// Number of pending (unmerged) deletes.
    #[must_use]
    pub fn pending_deletes(&self) -> usize {
        self.pending.pending_deletes()
    }

    /// Updates merged into the cracked array so far: `(inserts, deletes)`.
    #[must_use]
    pub fn merged_updates(&self) -> (u64, u64) {
        (self.merged_inserts, self.merged_deletes)
    }

    /// Logical number of values (cracked array plus the net effect of all
    /// pending updates, assuming pending deletes refer to present values).
    #[must_use]
    pub fn logical_len(&self) -> usize {
        let physical = self.cracker.len() as i64;
        let net = self.pending.pending_inserts() as i64 - self.pending.pending_deletes() as i64;
        (physical + net).max(0) as usize
    }

    /// Answers the range select `[lo, hi)`: merges the pending updates that
    /// fall inside the range, cracks, and returns the qualifying position
    /// range in the cracked array.
    pub fn select(&mut self, lo: Value, hi: Value) -> Range<usize> {
        if hi > lo {
            self.merge_range(lo, hi);
        }
        self.cracker.crack_select(lo, hi)
    }

    /// Counts qualifying values for `[lo, hi)` (merging pending updates in
    /// that range first).
    pub fn count(&mut self, lo: Value, hi: Value) -> u64 {
        let r = self.select(lo, hi);
        (r.end - r.start) as u64
    }

    /// Values in a position range previously returned by
    /// [`UpdatableCrackerColumn::select`].
    #[must_use]
    pub fn view(&self, range: Range<usize>) -> &[Value] {
        self.cracker.view(range)
    }

    /// Merges every pending update whose value falls in `[lo, hi)` into the
    /// cracked array. Exposed separately so idle-time tuning can also merge
    /// updates proactively.
    pub fn merge_range(&mut self, lo: Value, hi: Value) {
        let mut inserts = self.pending.take_inserts_in_range(lo, hi);
        let deletes = self.pending.take_deletes_in_range(lo, hi);
        // Cancel deletes against still-pending inserts first: a value that
        // was inserted and deleted before ever being merged never has to
        // touch the cracked array.
        let mut remaining_deletes = Vec::new();
        for d in deletes {
            if let Some(pos) = inserts.iter().position(|&v| v == d) {
                inserts.swap_remove(pos);
            } else {
                remaining_deletes.push(d);
            }
        }
        for v in inserts {
            self.ripple_insert(v);
            self.merged_inserts += 1;
        }
        for v in remaining_deletes {
            if self.ripple_delete(v) {
                self.merged_deletes += 1;
            }
        }
        debug_assert!(self.cracker.validate());
    }

    /// Merges *all* pending updates regardless of value.
    pub fn merge_all(&mut self) {
        self.merge_range(Value::MIN, Value::MAX);
    }

    /// Merges all pending updates, then fully sorts the column (see
    /// [`CrackerColumn::sort_fully`]): the index collapses to a single
    /// sorted piece seeded with its sum and prefix-sum array, so every
    /// subsequent range aggregate is zero-read. Updates merged afterwards
    /// keep the piece sorted by patching the prefix (ripple coherence).
    pub fn sort_fully(&mut self) {
        self.merge_all();
        self.cracker.sort_fully();
    }

    /// Validates the full structure (cracker invariants; pending buffers are
    /// unconstrained).
    #[must_use]
    pub fn validate(&self) -> bool {
        self.cracker.validate()
    }

    /// Ripple insertion: makes room for `v` inside the piece that admits it
    /// by shifting one slot through every following piece.
    ///
    /// Aggregate-cache coherence: the ripple only rotates values *within*
    /// each intermediate piece (every piece's value multiset is preserved),
    /// so the only cached sum that changes is the target piece's, which is
    /// patched by `v`. The last piece's cache — invalidated by
    /// [`PieceIndex::grow`](crate::index::PieceIndex::grow) while the
    /// appended slot transiently lives there — is restored once the ripple
    /// has moved the slot down to its target.
    ///
    /// Prefix-sum coherence: intermediate pieces are rotated (their first
    /// value moves to their end), which breaks sortedness, so they drop
    /// both the `sorted` flag and any prefix array — their patched whole-
    /// piece sums remain exact. The *target* piece is different: when it is
    /// sorted and carries a prefix array, the value is placed at its sorted
    /// offset (one `rotate_right` inside the piece) and the prefix array is
    /// **patched** — entries after the offset shift by one slot and rise by
    /// `v` ([`holistic_storage::PrefixSums::patch_insert`]) — instead of
    /// being discarded, so the piece stays on the zero-read aggregate path
    /// through arbitrary update streams. The patch is O(piece), so it is
    /// capped at [`MAX_PATCHED_PIECE_LEN`]; larger pieces take the O(1)
    /// placement and give up `sorted` + prefix (the pre-prefix behavior).
    fn ripple_insert(&mut self, v: Value) {
        let rowid = self.next_rowid;
        self.next_rowid = self.next_rowid.wrapping_add(1);
        self.cracker.ripple_insert(v, rowid as RowId);
    }

    fn ripple_delete(&mut self, v: Value) -> bool {
        self.cracker.ripple_delete(v)
    }
}

/// Ripple updates on the cracked representation itself.
///
/// These live on [`CrackerColumn`] (not only on the update-buffer wrapper
/// above) so the engine's concurrent update path and WAL replay during
/// recovery can apply them directly under a column's write latch. The
/// coherence rules are documented on the private delegators above.
impl CrackerColumn {
    /// Ripple insertion of `v`, carrying `rowid` when the column keeps row
    /// ids. See [`UpdatableCrackerColumn`]'s `ripple_insert` docs for the
    /// aggregate-cache and prefix-sum coherence argument.
    pub fn ripple_insert(&mut self, v: Value, rowid: RowId) {
        let (data, rowids, index) = self.parts_mut();
        if index.is_empty() {
            data.push(v);
            if let Some(rowids) = rowids {
                rowids.push(rowid);
            }
            index.grow(1);
            // The fresh single piece holds exactly the inserted value.
            if let Some(p) = index.pieces_mut().last_mut() {
                p.sum = Some(i128::from(v));
            }
            return;
        }
        let target = index
            .find_piece_for_value(v)
            // Total on a non-empty index (the empty case returned above);
            // silently dropping the insert would be worse than aborting.
            // lint:allow(panic-path)
            .expect("non-empty index has a piece for every value");
        // The target piece's bounds are conservative knowledge about its
        // current contents; a merged insert may fall just outside them (e.g.
        // below the first piece's tightened lower bound, or above the last
        // piece's tightened upper bound). Relax the bound so the piece admits
        // the new value — neighbouring pieces are unaffected because
        // `find_piece_for_value` guarantees the value sorts into this piece.
        {
            let pieces = index.pieces_mut();
            let p = &mut pieces[target];
            if p.lo.is_some_and(|lo| v < lo) {
                p.lo = Some(v);
            }
            if p.hi.is_some_and(|hi| v >= hi) {
                p.hi = Some(v.saturating_add(1));
            }
        }
        // Open a free slot at the very end of the array. `grow` invalidates
        // the last piece's sum and prefix, so save both: the sum is restored
        // below (the ripple preserves every non-target multiset), and the
        // prefix feeds the target's patch when the target *is* the last
        // piece.
        let saved_last = index
            .pieces()
            .last()
            // The target lookup above proved the index non-empty.
            // lint:allow(panic-path)
            .expect("non-empty index has pieces")
            .clone();
        data.push(v); // placeholder, overwritten below unless target is last
        let mut rowids = rowids;
        if let Some(r) = rowids.as_deref_mut() {
            r.push(rowid);
        }
        index.grow(1); // invalidates the last piece's cached sum and prefix
        let pieces = index.pieces_mut();
        let last = pieces.len() - 1;
        // The free slot currently sits at the end of the last piece. Ripple
        // it down to the target piece: each piece moves its first element to
        // the free slot at its end and hands its first slot to the previous
        // piece.
        let mut free_slot = pieces[last].end - 1;
        let mut i = last;
        while i > target {
            let first = pieces[i].start;
            data[free_slot] = data[first];
            if let Some(r) = rowids.as_deref_mut() {
                r[free_slot] = r[first];
            }
            // Transfer the first slot of piece i to piece i-1.
            pieces[i].start += 1;
            pieces[i - 1].end += 1;
            free_slot = first;
            i -= 1;
        }
        data[free_slot] = v;
        if let Some(r) = rowids.as_deref_mut() {
            r[free_slot] = rowid;
        }
        // Every rippled piece kept its value multiset, so their cached sums
        // are still exact: restore the last piece's (cleared by `grow`) and
        // patch the target's, which is the only piece that gained a value.
        pieces[last].sum = saved_last.sum;
        pieces[target].sum = pieces[target].sum.map(|s| s + i128::from(v));
        // Rippled-through pieces had their first value rotated to their end
        // (and their extents shifted), so sortedness and prefix arrays are
        // gone for them. The target piece can do better: if it was sorted
        // with a live prefix, place `v` at its sorted offset and patch the
        // prefix suffix instead of discarding it.
        // The target's extent already includes the new slot, so coverage is
        // checked against the *pre-insert* extent in the match guard below.
        // When the target is the last piece, `grow` cleared its prefix slot
        // and the saved copy carries it instead.
        let target_prefix = if target == last {
            saved_last.prefix.clone()
        } else {
            pieces[target].prefix.clone()
        }
        .filter(|_| pieces[target].sorted && pieces[target].len() <= MAX_PATCHED_PIECE_LEN);
        let start = pieces[target].start;
        let end = pieces[target].end; // includes the slot v occupies
        debug_assert_eq!(free_slot, end - 1);
        match target_prefix {
            Some(old) if old.covers(&(start..end - 1)) => {
                let off = data[start..end - 1].partition_point(|&x| x < v);
                data[start + off..end].rotate_right(1);
                if let Some(r) = rowids {
                    r[start + off..end].rotate_right(1);
                }
                pieces[target].prefix = Some(std::sync::Arc::new(old.patch_insert(
                    start..end - 1,
                    off,
                    v,
                )));
                // `sorted` stays true: the rotate re-established order.
            }
            _ => {
                // No prefix to preserve: the O(1) placement at the piece's
                // end stands, at the cost of the sorted flag.
                pieces[target].sorted = false;
                pieces[target].prefix = None;
            }
        }
        for p in pieces.iter_mut().skip(target + 1) {
            p.sorted = false;
            p.prefix = None;
        }
    }

    /// Batched ripple insertion: inserts every `(value, rowid)` pair with a
    /// **single** sweep over the piece table instead of one full ripple per
    /// value.
    ///
    /// A per-value ripple touches every piece above the target twice, so
    /// replaying a WAL tail of K inserts into a well-cracked column costs
    /// K × O(pieces) — at recovery scale (thousands of records into
    /// thousands of pieces) that dominated restart time. The batch form
    /// sorts the values, counts how many land in each piece, then shifts
    /// each piece once (`copy_within`, order-preserving) by the cumulative
    /// count below it and appends its new values at its end:
    /// O(data moved + pieces + K log K) total.
    ///
    /// Cache coherence mirrors the scalar ripple: shifted pieces keep their
    /// value multiset, so cached sums survive and the `sorted` flag is even
    /// preserved (the shift is a straight move, not a rotation) — only the
    /// prefix arrays go, because their entries are keyed to absolute
    /// positions. Pieces that *gain* values get their sums patched by the
    /// gained total and drop `sorted`/prefix.
    pub fn ripple_insert_batch(&mut self, batch: &[(Value, RowId)]) {
        // The sweep's bookkeeping only pays for itself beyond a couple of
        // values; the scalar ripple also handles the empty-index bootstrap.
        if batch.len() < 2 || self.piece_count() == 0 {
            for &(v, rowid) in batch {
                self.ripple_insert(v, rowid);
            }
            return;
        }
        let mut sorted: Vec<(Value, RowId)> = batch.to_vec();
        sorted.sort_unstable_by_key(|&(v, _)| v);
        let k = sorted.len();
        let (data, mut rowids, index) = self.parts_mut();
        let piece_count = index.pieces().len();
        // Target piece and per-piece gain counts, resolved before any
        // mutation so bound relaxation cannot skew later lookups.
        let mut counts = vec![0usize; piece_count];
        let mut targets = Vec::with_capacity(k);
        for &(v, _) in &sorted {
            // Total on a non-empty index (checked above).
            // lint:allow(panic-path)
            let t = index.find_piece_for_value(v).expect("non-empty index");
            counts[t] += 1;
            targets.push(t);
        }
        // Relax each target piece's bounds to admit its gained values (the
        // batch analogue of the scalar ripple's relaxation): values are
        // sorted, so per piece only the extremes matter.
        {
            let pieces = index.pieces_mut();
            for (i, &t) in targets.iter().enumerate() {
                let v = sorted[i].0;
                let p = &mut pieces[t];
                if p.lo.is_some_and(|lo| v < lo) {
                    p.lo = Some(v);
                }
                if p.hi.is_some_and(|hi| v >= hi) {
                    p.hi = Some(v.saturating_add(1));
                }
            }
        }
        // Open K slots at the end. `grow` invalidates the last piece's sum;
        // save it — the sweep below restores it (patched by any gain).
        let saved_last_sum = index.pieces().last().and_then(|p| p.sum);
        data.resize(data.len() + k, 0);
        if let Some(r) = rowids.as_deref_mut() {
            r.resize(r.len() + k, 0);
        }
        index.grow(k);
        let pieces = index.pieces_mut();
        pieces[piece_count - 1].end -= k; // sweep below re-extends it
        pieces[piece_count - 1].sum = saved_last_sum;
        // Sweep from the last piece down to the lowest target. Piece i's
        // start shifts by the number of batch values landing below it; its
        // end additionally absorbs its own gain.
        let lowest = targets[0];
        let mut values_below: Vec<usize> = Vec::with_capacity(piece_count);
        let mut acc = 0usize;
        for &c in &counts {
            values_below.push(acc);
            acc += c;
        }
        // Batch values are consumed back-to-front: the group gained by
        // piece i is sorted[values_below[i]..values_below[i] + counts[i]].
        for i in (lowest..piece_count).rev() {
            let delta = values_below[i];
            let gain = counts[i];
            let (start, end) = {
                let p = &pieces[i];
                (p.start, p.end)
            };
            if delta > 0 {
                data.copy_within(start..end, start + delta);
                if let Some(r) = rowids.as_deref_mut() {
                    r.copy_within(start..end, start + delta);
                }
            }
            if gain > 0 {
                let group = &sorted[delta..delta + gain];
                let mut gained: i128 = 0;
                for (slot, &(v, rowid)) in (end + delta..).zip(group.iter()) {
                    data[slot] = v;
                    if let Some(r) = rowids.as_deref_mut() {
                        r[slot] = rowid;
                    }
                    gained += i128::from(v);
                }
                let p = &mut pieces[i];
                p.sum = p.sum.map(|s| s + gained);
                p.sorted = false;
                p.prefix = None;
            } else if delta > 0 {
                // Pure shift: the straight move preserves order (and the
                // multiset, so the cached sum), but prefix entries are
                // keyed to absolute positions and no longer apply.
                pieces[i].prefix = None;
            }
            let p = &mut pieces[i];
            p.start += delta;
            p.end += delta + gain;
        }
    }

    /// Ripple deletion: removes one occurrence of `v` (if present) by
    /// filling its slot from within its piece and rippling the hole out to
    /// the end of the array. Returns `true` if a value was removed.
    ///
    /// Mirrors [`UpdatableCrackerColumn::insert`]'s ripple coherence rules
    /// (see `ripple_insert`): a sorted target piece with a live prefix
    /// array closes the hole with a `rotate_left` (order preserved) and
    /// **patches** the prefix suffix
    /// ([`holistic_storage::PrefixSums::patch_remove`]); any other target
    /// fills the hole from its own end in O(1) and gives up the sorted
    /// flag. Rippled-through pieces drop sortedness and prefix, keep sums.
    pub fn ripple_delete(&mut self, v: Value) -> bool {
        let (data, mut rowids, index) = self.parts_mut();
        if index.is_empty() {
            return false;
        }
        let Some(target) = index.find_piece_for_value(v) else {
            return false;
        };
        let pieces = index.pieces_mut();
        let p = pieces[target].clone();
        let Some(offset) = data[p.start..p.end].iter().position(|&x| x == v) else {
            return false;
        };
        let mut hole = p.start + offset;
        let last_of_piece = p.end - 1;
        let patched_prefix = p
            .covering_prefix()
            .filter(|_| p.sorted && p.len() <= MAX_PATCHED_PIECE_LEN)
            .map(|old| old.patch_remove(p.start..p.end, offset));
        match patched_prefix {
            Some(patched) => {
                // Sorted target with a prefix: close the hole in order and
                // patch the suffix of the prefix array.
                data[hole..p.end].rotate_left(1);
                if let Some(r) = rowids.as_deref_mut() {
                    r[hole..p.end].rotate_left(1);
                }
                pieces[target].prefix = Some(std::sync::Arc::new(patched));
                // `sorted` stays true: rotation preserved the order.
            }
            None => {
                // Fill the hole from the end of its own piece, leaving the
                // hole as the piece's last slot.
                data[hole] = data[last_of_piece];
                if let Some(r) = rowids.as_deref_mut() {
                    r[hole] = r[last_of_piece];
                }
                pieces[target].sorted = false;
                pieces[target].prefix = None;
            }
        }
        hole = last_of_piece;
        // The ripple below preserves every other piece's value multiset;
        // only the target loses `v` — patch its cached sum accordingly.
        pieces[target].sum = pieces[target].sum.map(|s| s - i128::from(v));
        // Ripple the hole through the following pieces: each piece hands its
        // first slot to the previous piece's hole and re-opens the hole at
        // its own end.
        for piece in pieces.iter_mut().skip(target + 1) {
            let start = piece.start;
            let end = piece.end;
            data[hole] = data[start];
            if let Some(r) = rowids.as_deref_mut() {
                r[hole] = r[start];
            }
            // The slot at `start` becomes the hole; move it to the end of
            // the piece by pulling the piece's last element forward.
            let last = end - 1;
            data[start] = data[last];
            if let Some(r) = rowids.as_deref_mut() {
                r[start] = r[last];
            }
            hole = last;
            piece.sorted = false;
            piece.prefix = None;
        }
        // The hole is now the very last slot of the array.
        data.pop();
        if let Some(r) = rowids {
            r.pop();
        }
        // Shrink piece extents: the target piece lost one slot; every later
        // piece shifted left by one.
        pieces[target].end -= 1;
        for piece in pieces.iter_mut().skip(target + 1) {
            piece.start -= 1;
            piece.end -= 1;
        }
        index.drop_empty_pieces();
        index.set_len(data.len());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Vec<Value> {
        vec![40, 10, 70, 20, 90, 60, 30, 80, 50, 15]
    }

    fn expected_count(values: &[Value], lo: Value, hi: Value) -> u64 {
        values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
    }

    /// A column cracked into several pieces, some sorted with prefix
    /// arrays, exercising every cache-coherence path of the batch ripple.
    fn cracked_column(n: i64) -> CrackerColumn {
        let values: Vec<Value> = (0..n).map(|i| (i * 7919) % n).collect();
        let mut c = CrackerColumn::from_values(values);
        let _ = c.crack_select(n / 10, n / 3);
        let _ = c.crack_select(n / 2, 4 * n / 5);
        c
    }

    #[test]
    fn batch_ripple_matches_sequential_ripples() {
        let n = 500i64;
        let batch: Vec<(Value, RowId)> = (0..37)
            .map(|i| (((i * 131) % (n + 40)) - 20, 10_000 + i as RowId))
            .collect();
        let mut one_by_one = cracked_column(n);
        for &(v, r) in &batch {
            one_by_one.ripple_insert(v, r);
        }
        let mut batched = cracked_column(n);
        batched.ripple_insert_batch(&batch);
        assert!(one_by_one.validate());
        assert!(batched.validate());
        let mut a = one_by_one.data().to_vec();
        let mut b = batched.data().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "both forms must hold the same value multiset");
        // Range counts agree with a scan of the reference multiset.
        for (lo, hi) in [(-25, 40), (0, n), (n / 4, n / 2), (n - 5, n + 30)] {
            let expect = a.iter().filter(|&&v| v >= lo && v < hi).count();
            let got = batched.crack_select(lo, hi);
            assert_eq!(got.len(), expect, "range [{lo},{hi})");
            assert!(batched.validate());
        }
    }

    #[test]
    fn batch_ripple_on_fresh_and_tiny_columns_falls_back() {
        // Empty index and sub-threshold batches route through the scalar
        // ripple; both must stay valid.
        let mut c = CrackerColumn::from_values(vec![]);
        c.ripple_insert_batch(&[(5, 0), (1, 1), (3, 2)]);
        assert!(c.validate());
        assert_eq!(c.data().len(), 3);
        let mut c = cracked_column(100);
        c.ripple_insert_batch(&[(42, 7)]);
        assert!(c.validate());
        assert_eq!(c.data().len(), 101);
    }

    #[test]
    fn batch_ripple_preserves_cached_sums_exactly() {
        let n = 400i64;
        let mut c = cracked_column(n);
        let before: i128 = c.data().iter().map(|&v| i128::from(v)).sum();
        let batch: Vec<(Value, RowId)> = vec![(3, 900), (250, 901), (399, 902), (-7, 903)];
        let gained: i128 = batch.iter().map(|&(v, _)| i128::from(v)).sum();
        c.ripple_insert_batch(&batch);
        assert!(c.validate(), "patched sums must survive validation");
        let after: i128 = c.data().iter().map(|&v| i128::from(v)).sum();
        assert_eq!(after, before + gained);
    }

    #[test]
    fn select_without_updates_matches_plain_cracking() {
        let mut u = UpdatableCrackerColumn::from_values(base());
        assert_eq!(u.count(20, 60), expected_count(&base(), 20, 60));
        assert!(u.validate());
        assert_eq!(u.logical_len(), base().len());
    }

    #[test]
    fn pending_insert_becomes_visible_when_range_is_queried() {
        let mut u = UpdatableCrackerColumn::from_values(base());
        // Crack a bit first so merging has to ripple through several pieces.
        let _ = u.select(20, 60);
        u.insert(45);
        u.insert(200);
        assert_eq!(u.pending_inserts(), 2);
        let count = u.count(40, 50);
        assert_eq!(count, expected_count(&base(), 40, 50) + 1);
        // Only the in-range insert was merged.
        assert_eq!(u.pending_inserts(), 1);
        assert!(u.validate());
        assert_eq!(u.merged_updates().0, 1);
        // The other insert shows up once its range is touched.
        assert_eq!(u.count(150, 250), 1);
        assert_eq!(u.pending_inserts(), 0);
    }

    #[test]
    fn pending_delete_removes_value_when_range_is_queried() {
        let mut u = UpdatableCrackerColumn::from_values(base());
        let _ = u.select(20, 60);
        let _ = u.select(60, 95);
        u.delete(70);
        u.delete(999); // not present: merge must not fail
        let count = u.count(60, 95);
        assert_eq!(count, expected_count(&base(), 60, 95) - 1);
        assert!(u.validate());
        assert_eq!(u.merged_updates().1, 1);
        assert_eq!(u.cracker().len(), base().len() - 1);
    }

    #[test]
    fn insert_then_delete_before_merge_cancels_out() {
        let mut u = UpdatableCrackerColumn::from_values(base());
        u.insert(55);
        u.delete(55);
        assert_eq!(u.count(0, 1000), expected_count(&base(), 0, 1000));
        assert_eq!(u.merged_updates(), (0, 0));
        assert!(u.validate());
    }

    #[test]
    fn merge_all_flushes_everything() {
        let mut u = UpdatableCrackerColumn::from_values(base());
        let _ = u.select(20, 60); // create some pieces
        for v in [5, 25, 45, 65, 85, 105] {
            u.insert(v);
        }
        u.delete(10);
        u.delete(90);
        u.merge_all();
        assert_eq!(u.pending_inserts(), 0);
        assert_eq!(u.pending_deletes(), 0);
        assert!(u.validate());
        assert_eq!(u.cracker().len(), base().len() + 6 - 2);
        assert_eq!(u.count(0, 1000), expected_count(&base(), 0, 1000) + 6 - 2);
    }

    #[test]
    fn rowids_stay_consistent_under_updates() {
        let mut u = UpdatableCrackerColumn::from_values_with_rowids(base());
        let _ = u.select(20, 60);
        u.insert(33);
        u.insert(77);
        u.delete(40);
        u.merge_all();
        assert!(u.validate());
        let r = u.select(0, 1000);
        let values = u.view(r.clone()).to_vec();
        let rowids = u.cracker().rowids_in(r).unwrap().to_vec();
        assert_eq!(values.len(), rowids.len());
        assert_eq!(values.len(), base().len() + 2 - 1);
        // Original rowids still address their original values; new rowids
        // belong to the two inserted values.
        for (v, id) in values.iter().zip(rowids.iter()) {
            if (*id as usize) < base().len() {
                assert_eq!(base()[*id as usize], *v);
            } else {
                assert!([33, 77].contains(v), "unexpected inserted value {v}");
            }
        }
        // The deleted value is gone.
        assert!(!values.contains(&40));
    }

    #[test]
    fn many_interleaved_updates_and_queries_stay_correct() {
        let mut reference: Vec<Value> = (0..200i64).map(|i| (i * 37) % 500).collect();
        let mut u = UpdatableCrackerColumn::from_values(reference.clone());
        let mut next = 1000;
        for step in 0usize..50 {
            let lo = (step as Value * 13) % 480;
            let hi = lo + 40;
            assert_eq!(
                u.count(lo, hi),
                expected_count(&reference, lo, hi),
                "step {step}"
            );
            assert!(u.validate(), "invariants at step {step}");
            // Interleave updates.
            if step % 3 == 0 {
                let v = (step as Value * 7) % 500;
                u.insert(v);
                reference.push(v);
            }
            if step % 5 == 0 {
                let v = reference[step];
                u.delete(v);
                let pos = reference.iter().position(|&x| x == v).unwrap();
                reference.remove(pos);
            }
            if step % 7 == 0 {
                u.insert(next);
                reference.push(next);
                next += 1;
            }
        }
        u.merge_all();
        assert_eq!(u.count(0, 2000), reference.len() as u64);
    }

    /// Every cached piece sum must equal a fresh scan of the piece's slice.
    fn assert_sums_match_fresh_scan(u: &UpdatableCrackerColumn) {
        let data = u.cracker().data();
        for (i, p) in u.cracker().pieces().iter().enumerate() {
            if let Some(sum) = p.sum {
                let fresh: i128 = data[p.start..p.end].iter().map(|&v| i128::from(v)).sum();
                assert_eq!(sum, fresh, "piece {i} cached sum diverged from data");
            }
        }
    }

    #[test]
    fn aggregate_cache_stays_coherent_through_interleaved_updates() {
        // Regression for the update-merge path: ripple insertion/deletion
        // must patch the per-piece sums (target piece only; rippled pieces
        // keep their multiset), so cached aggregates never go stale.
        let mut reference: Vec<Value> = (0..300i64).map(|i| (i * 73) % 700).collect();
        let mut u = UpdatableCrackerColumn::from_values_with_rowids(reference.clone());
        // Crack a few times so the cache is populated before updates hit it.
        for &(lo, hi) in &[(50, 200), (400, 650), (0, 700)] {
            let _ = u.select(lo, hi);
        }
        assert!(u.cracker().cached_sum_pieces() > 0, "cache must be seeded");
        let scan_sum = |values: &[Value], lo: Value, hi: Value| -> i128 {
            values
                .iter()
                .filter(|&&v| v >= lo && v < hi)
                .map(|&v| i128::from(v))
                .sum()
        };
        for step in 0usize..60 {
            let lo = (step as Value * 31) % 650;
            let hi = lo + 50;
            match step % 4 {
                0 => {
                    let v = (step as Value * 17) % 700;
                    u.insert(v);
                    reference.push(v);
                }
                1 => {
                    let v = reference[(step * 7) % reference.len()];
                    u.delete(v);
                    let pos = reference.iter().position(|&x| x == v).unwrap();
                    reference.remove(pos);
                }
                _ => {}
            }
            let r = u.select(lo, hi);
            assert_eq!(
                r.end - r.start,
                reference.iter().filter(|&&v| v >= lo && v < hi).count(),
                "count at step {step}"
            );
            // The cached aggregate equals a fresh scan of the reference.
            let agg = u.cracker().aggregate_range(r, lo, hi);
            assert_eq!(agg.sum, scan_sum(&reference, lo, hi), "sum at step {step}");
            assert_sums_match_fresh_scan(&u);
            assert!(u.validate(), "invariants at step {step}");
        }
        u.merge_all();
        assert_sums_match_fresh_scan(&u);
        let r = u.select(0, 1000);
        let agg = u.cracker().aggregate_range(r, 0, 1000);
        assert_eq!(agg.sum, scan_sum(&reference, 0, 1000));
        assert_eq!(agg.count as usize, reference.len());
    }

    #[test]
    fn sorted_piece_survives_updates_with_a_patched_prefix() {
        // A fully sorted, prefix-seeded column keeps its sorted pieces
        // sorted — and their prefix arrays live — through insert/delete
        // merges: the ripple patches the suffix instead of discarding.
        let mut u = UpdatableCrackerColumn::from_values_with_rowids(base());
        u.sort_fully();
        assert_eq!(u.cracker().prefix_pieces(), 1);
        let mut reference = base();
        for (step, &(ins, del)) in [(45, 40), (12, 90), (100, 15), (33, 45)].iter().enumerate() {
            u.insert(ins);
            reference.push(ins);
            u.delete(del);
            let pos = reference.iter().position(|&x| x == del).unwrap();
            reference.remove(pos);
            u.merge_all();
            assert!(u.validate(), "step {step}");
            let c = u.cracker();
            assert!(
                c.pieces().iter().all(|p| p.sorted),
                "step {step}: the single sorted piece must stay sorted"
            );
            assert_eq!(
                c.prefix_pieces(),
                c.piece_count(),
                "step {step}: prefix patched, not discarded"
            );
            assert_sums_match_fresh_scan(&u);
            // Interior aggregates stay zero-read through the updates.
            let r = c.select_if_answerable(20, 80).expect("sorted + prefix");
            let agg = c.aggregate_range(r, 20, 80);
            let expected: i128 = reference
                .iter()
                .filter(|&&v| (20..80).contains(&v))
                .map(|&v| i128::from(v))
                .sum();
            assert_eq!(agg.sum, expected, "step {step}");
            assert_eq!(agg.scanned_values, 0, "step {step}");
        }
    }

    #[test]
    fn oversized_sorted_pieces_fall_back_to_cheap_placement() {
        // Above MAX_PATCHED_PIECE_LEN the O(piece) patch would make every
        // merged update unboundedly expensive, so the ripple reverts to the
        // O(1) placement: sorted + prefix are given up, sums stay patched,
        // answers stay exact.
        let n = MAX_PATCHED_PIECE_LEN + 64;
        let mut u = UpdatableCrackerColumn::from_values((0..n as Value).collect());
        u.sort_fully();
        assert_eq!(u.cracker().prefix_pieces(), 1);
        u.insert(5);
        u.merge_all();
        assert!(u.validate());
        let c = u.cracker();
        assert!(
            c.pieces().iter().all(|p| !p.sorted && p.prefix.is_none()),
            "oversized piece must take the O(1) fallback"
        );
        assert_eq!(c.cached_sum_pieces(), c.piece_count(), "sum still patched");
        assert_eq!(u.count(0, 10), 11);
    }

    #[test]
    fn empty_column_accepts_inserts() {
        let mut u = UpdatableCrackerColumn::from_values(vec![]);
        u.insert(5);
        u.insert(1);
        assert_eq!(u.count(0, 10), 2);
        assert!(u.validate());
        u.delete(5);
        assert_eq!(u.count(0, 10), 1);
        assert!(u.validate());
    }
}
