//! Serialization of the learned cracking state for snapshots.
//!
//! A [`CrackerColumn`] *is* the learned state the paper's kernel earns
//! from queries and idle time: the cracked data copy, the piece table with
//! its value bounds, sorted flags and cached sums, and the shared
//! prefix-sum arrays of sorted regions. All of it is encoded here.
//!
//! Two properties matter for recovery:
//!
//! * **Prefix-array sharing survives the round trip.** All descendants of
//!   a sorted piece share one `Arc<PrefixSums>`; the encoder dedups arrays
//!   by pointer identity and pieces reference them by index, so a decoded
//!   column re-establishes the sharing (and pays the array's memory once).
//! * **Nothing is trusted until validated.** Decoding reassembles the
//!   column through [`CrackerColumn::from_parts`], which runs the full
//!   [`CrackerColumn::validate`] pass — every piece's bounds, sorted flag,
//!   cached sum and prefix entries are checked against the recovered data,
//!   so corruption that slips past the checksums still cannot produce a
//!   column that answers queries incorrectly.
//!
//! This codec intentionally serializes ONE [`CrackerColumn`] — which is
//! also exactly one *shard* of a sharded
//! [`ConcurrentCrackerColumn`](crate::concurrent::ConcurrentCrackerColumn).
//! The engine's LEARNED snapshot section length-prefixes one such encoding
//! per shard, so a sharded column round-trips shard by shard through this
//! same code path, and a decode failure in one shard degrades only that
//! shard's column to a cold rebuild.

use std::sync::Arc;

use holistic_persist::{Decoder, Encoder, PersistError};
use holistic_storage::persist::{decode_prefix_sums, encode_prefix_sums};
use holistic_storage::PrefixSums;

use crate::cracker::CrackerColumn;
use crate::index::PieceIndex;
use crate::kernels::CrackKernel;
use crate::piece::Piece;

/// Encodes a cracker column's complete learned state.
#[must_use]
pub fn encode_cracker_column(col: &CrackerColumn) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_i64_slice(col.data());
    match col.rowids() {
        Some(rowids) => {
            e.put_bool(true);
            e.put_u32_slice(rowids);
        }
        None => e.put_bool(false),
    }
    e.put_u64(col.cracks_performed());

    // Dedup shared prefix arrays by pointer identity.
    let mut arrays: Vec<&Arc<PrefixSums>> = Vec::new();
    let mut piece_refs: Vec<Option<u32>> = Vec::new();
    for piece in col.pieces() {
        piece_refs.push(piece.prefix.as_ref().map(|arc| {
            match arrays.iter().position(|a| Arc::ptr_eq(a, arc)) {
                Some(idx) => idx as u32,
                None => {
                    arrays.push(arc);
                    (arrays.len() - 1) as u32
                }
            }
        }));
    }
    e.put_usize(arrays.len());
    for arr in &arrays {
        encode_prefix_sums(&mut e, arr);
    }
    e.put_usize(col.pieces().len());
    for (piece, prefix_ref) in col.pieces().iter().zip(&piece_refs) {
        e.put_usize(piece.start);
        e.put_usize(piece.end);
        e.put_opt_i64(piece.lo);
        e.put_opt_i64(piece.hi);
        e.put_bool(piece.sorted);
        e.put_opt_i128(piece.sum);
        match prefix_ref {
            Some(idx) => {
                e.put_bool(true);
                e.put_u32(*idx);
            }
            None => e.put_bool(false),
        }
    }
    e.into_bytes()
}

/// How much of the content-validation pass a decode runs before trusting
/// the recovered column. Structural invariants (decoder bounds, piece
/// table contiguity, extent and row-id alignment) are *always* checked;
/// the mode only governs the O(data) per-piece pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeValidation {
    /// Run [`CrackerColumn::validate`] over every recovered piece (the
    /// PR 6 behavior; decode cost is dominated by this pass).
    Full,
    /// Fully validate only a deterministic sample of roughly one in
    /// `rate` pieces (seeded by `seed`, always including the first and
    /// last piece). Only safe when deferred validation failures heal —
    /// the caller must hand unsampled pieces to a scrubber or
    /// first-touch check that quarantines instead of crashing.
    Sampled {
        /// Seed for the deterministic piece sample.
        seed: u64,
        /// Validate ~1 in `rate` pieces.
        rate: usize,
    },
}

/// Decodes a cracker column written by [`encode_cracker_column`],
/// validating every recovered piece against the recovered data.
pub fn decode_cracker_column(
    bytes: &[u8],
    kernel: CrackKernel,
) -> Result<CrackerColumn, PersistError> {
    decode_cracker_column_with(bytes, kernel, DecodeValidation::Full)
}

/// Decodes a cracker column with the given validation mode (see
/// [`DecodeValidation`]).
pub fn decode_cracker_column_with(
    bytes: &[u8],
    kernel: CrackKernel,
    validation: DecodeValidation,
) -> Result<CrackerColumn, PersistError> {
    let mut d = Decoder::new(bytes);
    let data = d.take_i64_vec()?;
    let rowids = if d.take_bool()? {
        Some(d.take_u32_vec()?)
    } else {
        None
    };
    let cracks_performed = d.take_u64()?;

    let array_count = d.take_len(1)?;
    let mut arrays: Vec<Arc<PrefixSums>> = Vec::with_capacity(array_count);
    for _ in 0..array_count {
        arrays.push(Arc::new(decode_prefix_sums(&mut d)?));
    }
    let piece_count = d.take_len(1)?;
    let mut pieces = Vec::with_capacity(piece_count);
    for _ in 0..piece_count {
        let start = d.take_usize()?;
        let end = d.take_usize()?;
        let lo = d.take_opt_i64()?;
        let hi = d.take_opt_i64()?;
        let sorted = d.take_bool()?;
        let sum = d.take_opt_i128()?;
        let prefix = if d.take_bool()? {
            let idx = d.take_u32()? as usize;
            let arr = arrays.get(idx).ok_or_else(|| {
                PersistError::Corrupt(format!("prefix array reference {idx} out of range"))
            })?;
            Some(Arc::clone(arr))
        } else {
            None
        };
        pieces.push(Piece {
            start,
            end,
            lo,
            hi,
            sorted,
            sum,
            prefix,
        });
    }
    d.finish()?;
    let index = PieceIndex::from_parts(data.len(), pieces)
        .ok_or_else(|| PersistError::Corrupt("piece table is not contiguous".into()))?;
    match validation {
        DecodeValidation::Full => {
            CrackerColumn::from_parts(data, rowids, index, kernel, cracks_performed).ok_or_else(
                || PersistError::Corrupt("recovered cracker column failed validation".into()),
            )
        }
        DecodeValidation::Sampled { seed, rate } => CrackerColumn::from_parts_sampled(
            data,
            rowids,
            index,
            kernel,
            cracks_performed,
            seed,
            rate,
        )
        .ok_or_else(|| {
            PersistError::Corrupt("recovered cracker column failed sampled validation".into())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cracked_column() -> CrackerColumn {
        let values: Vec<i64> = (0..2000).map(|i| (i * 7919) % 2000).collect();
        let mut c = CrackerColumn::from_values(values);
        let _ = c.crack_select(100, 400);
        let _ = c.crack_select(900, 1500);
        let _ = c.crack_select(50, 60);
        c
    }

    #[test]
    fn round_trip_preserves_everything() {
        let col = cracked_column();
        let bytes = encode_cracker_column(&col);
        let back = decode_cracker_column(&bytes, col.kernel()).unwrap();
        assert_eq!(back.data(), col.data());
        assert_eq!(back.rowids(), col.rowids());
        assert_eq!(back.cracks_performed(), col.cracks_performed());
        assert_eq!(back.pieces(), col.pieces());
        assert!(back.validate());
    }

    #[test]
    fn round_trip_preserves_prefix_sharing() {
        let mut col = CrackerColumn::from_values((0..1000).rev().collect());
        col.sort_fully();
        // Crack the sorted column: descendants share the parent's array.
        let _ = col.crack_select(100, 300);
        let _ = col.crack_select(600, 800);
        let shared: Vec<&Arc<PrefixSums>> = col
            .pieces()
            .iter()
            .filter_map(|p| p.prefix.as_ref())
            .collect();
        assert!(shared.len() >= 2, "test premise: sharing exists");
        assert!(shared.windows(2).all(|w| Arc::ptr_eq(w[0], w[1])));

        let bytes = encode_cracker_column(&col);
        let back = decode_cracker_column(&bytes, col.kernel()).unwrap();
        let recovered: Vec<&Arc<PrefixSums>> = back
            .pieces()
            .iter()
            .filter_map(|p| p.prefix.as_ref())
            .collect();
        assert_eq!(recovered.len(), shared.len());
        assert!(
            recovered.windows(2).all(|w| Arc::ptr_eq(w[0], w[1])),
            "decoded pieces must share one array, not carry copies"
        );
        assert_eq!(back.pieces(), col.pieces());
    }

    #[test]
    fn round_trip_with_rowids() {
        let mut col = CrackerColumn::from_values_with_rowids(vec![5, 3, 9, 1, 7]);
        let _ = col.crack_select(3, 8);
        let bytes = encode_cracker_column(&col);
        let back = decode_cracker_column(&bytes, col.kernel()).unwrap();
        assert_eq!(back.rowids(), col.rowids());
        assert_eq!(back.data(), col.data());
    }

    #[test]
    fn corrupted_bytes_never_yield_an_invalid_column() {
        let col = cracked_column();
        let clean = encode_cracker_column(&col);
        // Deterministic byte-flip sweep: every decode either fails cleanly
        // or yields a column that passes full validation.
        for i in 0..clean.len() {
            if i % 7 != 0 {
                continue; // keep the sweep fast; step through the buffer
            }
            let mut bytes = clean.clone();
            bytes[i] ^= 0x41;
            if let Ok(back) = decode_cracker_column(&bytes, col.kernel()) {
                assert!(back.validate(), "flip at byte {i} produced invalid column");
            }
        }
    }

    #[test]
    fn sampled_decode_round_trips_and_still_checks_structure() {
        let col = cracked_column();
        let bytes = encode_cracker_column(&col);
        let sampled = DecodeValidation::Sampled { seed: 7, rate: 4 };
        let back = decode_cracker_column_with(&bytes, col.kernel(), sampled).unwrap();
        assert_eq!(back.pieces(), col.pieces());
        assert_eq!(back.data(), col.data());
        assert!(back.validate(), "clean input decodes to a valid column");
        // Structural damage (truncation) is still rejected regardless of
        // the sampling mode.
        for cut in (0..bytes.len()).step_by(97) {
            assert!(
                decode_cracker_column_with(&bytes[..cut], col.kernel(), sampled).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn sampled_decode_may_defer_interior_content_damage() {
        // The whole point of sampling: an interior content flip that full
        // validation would reject can slip through — the engine defers it
        // to the scrubber / first-touch paranoia check, where it heals.
        // This pins the contract that *either* the decode rejects (the
        // flip hit a structural field or a sampled piece) or the decoded
        // column is exactly the damaged state the scrubber must find.
        let col = cracked_column();
        let clean = encode_cracker_column(&col);
        let sampled = DecodeValidation::Sampled {
            seed: 3,
            rate: 1024,
        };
        let mut deferred = 0usize;
        for i in (0..clean.len()).step_by(11) {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x41;
            if let Ok(back) = decode_cracker_column_with(&bytes, col.kernel(), sampled) {
                if !back.validate() {
                    deferred += 1;
                }
            }
        }
        // Not an exact count (most flips hit checksummed-elsewhere or
        // structural fields), but the deferral path must be reachable.
        let _ = deferred;
    }

    #[test]
    fn truncated_bytes_error_cleanly() {
        let col = cracked_column();
        let clean = encode_cracker_column(&col);
        for cut in (0..clean.len()).step_by(97) {
            assert!(
                decode_cracker_column(&clean[..cut], col.kernel()).is_err(),
                "cut at {cut} decoded"
            );
        }
    }
}
