//! Property-based equivalence suite: the predicated (branch-free) kernels
//! must be observationally equivalent to the branchy reference kernels.
//!
//! For arbitrary pieces and pivots, every variant pair must agree on:
//!
//! * the partition boundaries (the returned split points);
//! * the value multiset (no value lost, duplicated or invented);
//! * the partition predicate itself (each region holds only the values the
//!   contract promises);
//! * value/row-id pair alignment in the `_with_rowids` forms (every row id
//!   still addresses its original value after the permutation).
//!
//! Degenerate inputs — empty pieces, single elements, all-equal pieces,
//! pivots outside the value domain, and empty (`hi <= lo`) intervals — are
//! exercised both through dedicated generators and as boundary cases of the
//! general ones.

use proptest::prelude::*;

use holistic_cracking::kernels::{
    crack_in_three, crack_in_three_pred, crack_in_three_with_rowids,
    crack_in_three_with_rowids_pred, crack_in_two, crack_in_two_pred, crack_in_two_with_rowids,
    crack_in_two_with_rowids_pred, CrackKernel,
};

type Value = i64;
type RowId = u32;

fn sorted(mut v: Vec<Value>) -> Vec<Value> {
    v.sort_unstable();
    v
}

fn rowids_for(values: &[Value]) -> Vec<RowId> {
    (0..values.len() as RowId).collect()
}

fn assert_pairs_preserved(original: &[Value], data: &[Value], rowids: &[RowId]) {
    assert_eq!(data.len(), rowids.len());
    for (&v, &id) in data.iter().zip(rowids) {
        assert_eq!(original[id as usize], v, "rowid {id} lost its value");
    }
}

prop_compose! {
    fn arb_piece()(values in prop::collection::vec(-1000i64..1000, 0..600)) -> Vec<Value> {
        values
    }
}

prop_compose! {
    fn arb_all_equal()(v in -1000i64..1000, len in 0usize..200) -> Vec<Value> {
        vec![v; len]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn crack_in_two_pred_equals_branchy(values in arb_piece(), pivot in -1100i64..1100) {
        let mut branchy = values.clone();
        let mut pred = values.clone();
        let sa = crack_in_two(&mut branchy, pivot);
        let sb = crack_in_two_pred(&mut pred, pivot);
        prop_assert_eq!(sa, sb, "partition boundary must match");
        prop_assert!(pred[..sb].iter().all(|&v| v < pivot));
        prop_assert!(pred[sb..].iter().all(|&v| v >= pivot));
        prop_assert_eq!(sorted(pred), sorted(values.clone()), "multiset must be preserved");
        prop_assert_eq!(sorted(branchy), sorted(values), "branchy multiset must be preserved");
    }

    #[test]
    fn crack_in_two_rowids_pred_equals_branchy(values in arb_piece(), pivot in -1100i64..1100) {
        let mut branchy = values.clone();
        let mut branchy_ids = rowids_for(&values);
        let mut pred = values.clone();
        let mut pred_ids = rowids_for(&values);
        let sa = crack_in_two_with_rowids(&mut branchy, &mut branchy_ids, pivot);
        let sb = crack_in_two_with_rowids_pred(&mut pred, &mut pred_ids, pivot);
        prop_assert_eq!(sa, sb);
        assert_pairs_preserved(&values, &branchy, &branchy_ids);
        assert_pairs_preserved(&values, &pred, &pred_ids);
        // Row ids are a permutation (no id lost or duplicated).
        let mut ids = pred_ids.clone();
        ids.sort_unstable();
        prop_assert_eq!(ids, rowids_for(&values));
    }

    #[test]
    fn crack_in_three_pred_equals_branchy(
        values in arb_piece(),
        lo in -1100i64..1100,
        width in -200i64..400,
    ) {
        // `width` may be negative: exercises the degenerate hi <= lo path.
        let hi = lo + width;
        let mut branchy = values.clone();
        let mut pred = values.clone();
        let (a1, b1) = crack_in_three(&mut branchy, lo, hi);
        let (a2, b2) = crack_in_three_pred(&mut pred, lo, hi);
        prop_assert_eq!((a1, b1), (a2, b2), "partition boundaries must match");
        prop_assert!(pred[..a2].iter().all(|&v| v < lo));
        if hi > lo {
            prop_assert!(pred[a2..b2].iter().all(|&v| v >= lo && v < hi));
            prop_assert!(pred[b2..].iter().all(|&v| v >= hi));
        } else {
            prop_assert_eq!(a2, b2, "degenerate interval must report an empty middle");
            prop_assert!(pred[a2..].iter().all(|&v| v >= lo));
        }
        prop_assert_eq!(sorted(pred), sorted(values));
    }

    #[test]
    fn crack_in_three_rowids_pred_equals_branchy(
        values in arb_piece(),
        lo in -1100i64..1100,
        width in -200i64..400,
    ) {
        let hi = lo + width;
        let mut branchy = values.clone();
        let mut branchy_ids = rowids_for(&values);
        let mut pred = values.clone();
        let mut pred_ids = rowids_for(&values);
        let ra = crack_in_three_with_rowids(&mut branchy, &mut branchy_ids, lo, hi);
        let rb = crack_in_three_with_rowids_pred(&mut pred, &mut pred_ids, lo, hi);
        prop_assert_eq!(ra, rb);
        assert_pairs_preserved(&values, &branchy, &branchy_ids);
        assert_pairs_preserved(&values, &pred, &pred_ids);
    }

    #[test]
    fn all_equal_pieces_agree(values in arb_all_equal(), pivot in -1100i64..1100) {
        let mut branchy = values.clone();
        let mut pred = values.clone();
        prop_assert_eq!(
            crack_in_two(&mut branchy, pivot),
            crack_in_two_pred(&mut pred, pivot)
        );
        let mut branchy = values.clone();
        let mut pred = values.clone();
        prop_assert_eq!(
            crack_in_three(&mut branchy, pivot, pivot + 1),
            crack_in_three_pred(&mut pred, pivot, pivot + 1)
        );
    }

    #[test]
    fn tiny_pieces_agree(values in prop::collection::vec(-10i64..10, 0..2), pivot in -12i64..12) {
        // Empty and single-element pieces.
        let mut branchy = values.clone();
        let mut pred = values.clone();
        prop_assert_eq!(
            crack_in_two(&mut branchy, pivot),
            crack_in_two_pred(&mut pred, pivot)
        );
        prop_assert_eq!(branchy, pred, "on ≤1 element the layouts are identical");
    }

    #[test]
    fn dispatcher_is_equivalent_at_every_policy(
        values in arb_piece(),
        pivot in -1100i64..1100,
        threshold in 0usize..700,
    ) {
        for kernel in [
            CrackKernel::Branchy,
            CrackKernel::Predicated,
            CrackKernel::Auto { branchy_below: threshold },
        ] {
            let mut reference = values.clone();
            let mut dispatched = values.clone();
            let expected = crack_in_two(&mut reference, pivot);
            let got = kernel.crack_in_two(&mut dispatched, pivot);
            prop_assert_eq!(expected, got, "policy {} diverged", kernel);
            prop_assert_eq!(sorted(dispatched), sorted(values.clone()));
        }
    }
}
