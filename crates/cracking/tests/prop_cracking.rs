//! Property-based tests for the adaptive-indexing substrate.
//!
//! The key invariants, checked on arbitrary data and query sequences:
//!
//! * a cracking select returns exactly the rows a scan returns;
//! * the piece index stays structurally valid (contiguous, non-empty,
//!   value-bounded pieces) after any sequence of cracks;
//! * cracking never loses or invents values (multiset preservation);
//! * all stochastic policies return scan-equivalent answers;
//! * pending updates become visible exactly when their range is queried;
//! * adaptive merging and the sorted-index baseline agree with a scan.

use proptest::prelude::*;

use holistic_cracking::stochastic::crack_select_with_policy;
use holistic_cracking::{
    AdaptiveMergingIndex, CrackPolicy, CrackerColumn, CrackerMap, UpdatableCrackerColumn,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scan_count(values: &[i64], lo: i64, hi: i64) -> u64 {
    values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
}

fn sorted(mut v: Vec<i64>) -> Vec<i64> {
    v.sort_unstable();
    v
}

prop_compose! {
    fn arb_column()(values in prop::collection::vec(-1000i64..1000, 0..400)) -> Vec<i64> {
        values
    }
}

prop_compose! {
    fn arb_queries()(queries in prop::collection::vec((-1100i64..1100, 0i64..300), 1..30))
        -> Vec<(i64, i64)>
    {
        queries.into_iter().map(|(lo, width)| (lo, lo + width)).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn crack_select_equals_scan(values in arb_column(), queries in arb_queries()) {
        let mut cracker = CrackerColumn::from_values(values.clone());
        for (lo, hi) in queries {
            let range = cracker.crack_select(lo, hi);
            prop_assert_eq!((range.end - range.start) as u64, scan_count(&values, lo, hi));
            prop_assert!(cracker.view(range).iter().all(|&v| v >= lo && v < hi));
            prop_assert!(cracker.validate(), "piece invariants violated");
        }
        // Multiset preservation over the whole sequence.
        prop_assert_eq!(sorted(cracker.data().to_vec()), sorted(values));
    }

    #[test]
    fn rowids_always_point_at_their_values(values in arb_column(), queries in arb_queries()) {
        let mut cracker = CrackerColumn::from_values_with_rowids(values.clone());
        for (lo, hi) in queries {
            let range = cracker.crack_select(lo, hi);
            let ids = cracker.rowids_in(range.clone()).unwrap();
            for (&v, &id) in cracker.view(range).iter().zip(ids) {
                prop_assert_eq!(values[id as usize], v);
            }
        }
    }

    #[test]
    fn random_refinement_never_breaks_queries(
        values in arb_column(),
        actions in 0u64..200,
        queries in arb_queries(),
        seed in any::<u64>(),
    ) {
        let mut cracker = CrackerColumn::from_values(values.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        cracker.random_cracks(actions, &mut rng);
        prop_assert!(cracker.validate());
        for (lo, hi) in queries {
            prop_assert_eq!(cracker.crack_count(lo, hi), scan_count(&values, lo, hi));
        }
    }

    #[test]
    fn stochastic_policies_are_scan_equivalent(
        values in arb_column(),
        queries in arb_queries(),
        seed in any::<u64>(),
    ) {
        for policy in [
            CrackPolicy::Standard,
            CrackPolicy::Ddc { threshold: 16 },
            CrackPolicy::Ddr { threshold: 16 },
            CrackPolicy::Mdd1r,
        ] {
            let mut cracker = CrackerColumn::from_values(values.clone());
            let mut rng = StdRng::seed_from_u64(seed);
            for &(lo, hi) in &queries {
                let range = crack_select_with_policy(&mut cracker, lo, hi, policy, &mut rng);
                prop_assert_eq!(
                    (range.end - range.start) as u64,
                    scan_count(&values, lo, hi),
                    "policy {:?}", policy
                );
                prop_assert!(cracker.validate(), "policy {:?} broke invariants", policy);
            }
        }
    }

    #[test]
    fn sort_fully_is_equivalent_to_std_sort(values in arb_column()) {
        let mut cracker = CrackerColumn::from_values(values.clone());
        cracker.sort_fully();
        prop_assert_eq!(cracker.data().to_vec(), sorted(values));
        prop_assert!(cracker.validate());
    }

    #[test]
    fn updates_become_visible_when_their_range_is_queried(
        base in arb_column(),
        inserts in prop::collection::vec(-1000i64..1000, 0..50),
        delete_positions in prop::collection::vec(any::<prop::sample::Index>(), 0..20),
        queries in arb_queries(),
    ) {
        let mut reference = base.clone();
        let mut column = UpdatableCrackerColumn::from_values(base);
        for v in inserts {
            column.insert(v);
            reference.push(v);
        }
        // Delete a subset of currently present values.
        for idx in delete_positions {
            if reference.is_empty() {
                break;
            }
            let i = idx.index(reference.len());
            let v = reference.swap_remove(i);
            column.delete(v);
        }
        for (lo, hi) in queries {
            prop_assert_eq!(column.count(lo, hi), scan_count(&reference, lo, hi));
            prop_assert!(column.validate());
        }
        column.merge_all();
        prop_assert_eq!(column.count(i64::MIN, i64::MAX), reference.len() as u64);
    }

    #[test]
    fn adaptive_merging_equals_scan(
        values in arb_column(),
        run_size in 1usize..64,
        queries in arb_queries(),
    ) {
        let mut index = AdaptiveMergingIndex::new(&values, run_size);
        for (lo, hi) in queries {
            let result = index.query(lo, hi);
            prop_assert_eq!(result.len() as u64, scan_count(&values, lo, hi));
            prop_assert!(result.windows(2).all(|w| w[0] <= w[1]), "results must be sorted");
        }
    }

    #[test]
    fn sideways_cracking_projects_exactly_the_matching_tails(
        head in arb_column(),
        queries in arb_queries(),
    ) {
        // tail[i] is derived from (head[i], i) so pairings are verifiable.
        let tail: Vec<i64> = head.iter().enumerate().map(|(i, &h)| h * 10_000 + i as i64).collect();
        let mut map = CrackerMap::new(head.clone(), tail.clone());
        for (lo, hi) in queries {
            let range = map.crack_select(lo, hi);
            let mut projected = map.project(range).to_vec();
            projected.sort_unstable();
            let mut expected: Vec<i64> = head
                .iter()
                .zip(&tail)
                .filter(|(&h, _)| h >= lo && h < hi)
                .map(|(_, &t)| t)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(projected, expected);
            prop_assert!(map.validate());
        }
    }

    #[test]
    fn piece_index_statistics_are_consistent(values in arb_column(), queries in arb_queries()) {
        let mut cracker = CrackerColumn::from_values(values.clone());
        for (lo, hi) in queries {
            let _ = cracker.crack_select(lo, hi);
            let index = cracker.index();
            // Piece extents tile the column exactly.
            let covered: usize = index.pieces().iter().map(|p| p.len()).sum();
            prop_assert_eq!(covered, values.len());
            if !values.is_empty() {
                prop_assert!(index.piece_count() >= 1);
                prop_assert!(index.max_piece_len() <= values.len());
                let avg = index.avg_piece_len();
                prop_assert!(avg > 0.0 && avg <= values.len() as f64);
            }
        }
    }
}
