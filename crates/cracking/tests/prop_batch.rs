//! Property-based tests for batched cracking: on arbitrary data and query
//! batches, the multi-pivot batch path must be indistinguishable from a
//! sequential replay of the same queries.
//!
//! * every query's answer equals a scan of the base data;
//! * plain (Standard-policy) cracking is order-independent, so the batch
//!   pass must leave **exactly** the piece index a per-query sequential
//!   replay produces — same boundaries, same value bounds, same flags;
//! * the multi-pivot kernels agree with repeated two-way cracks in both
//!   physical forms, with row ids staying aligned;
//! * stochastic policies keep scan-equivalent answers through the batched
//!   concurrent path.

use proptest::prelude::*;

use holistic_cracking::stochastic::crack_select_batch_with_policy;
use holistic_cracking::{
    crack_in_k, crack_in_k_pred, crack_in_two, ConcurrentCrackerColumn, CrackPolicy, CrackerColumn,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scan_count(values: &[i64], lo: i64, hi: i64) -> u64 {
    values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
}

fn sorted(mut v: Vec<i64>) -> Vec<i64> {
    v.sort_unstable();
    v
}

prop_compose! {
    fn arb_column()(values in prop::collection::vec(-1000i64..1000, 0..400)) -> Vec<i64> {
        values
    }
}

prop_compose! {
    fn arb_batch()(queries in prop::collection::vec((-1100i64..1100, -20i64..300), 1..40))
        -> Vec<(i64, i64)>
    {
        // Negative widths produce inverted (empty) ranges on purpose.
        queries.into_iter().map(|(lo, width)| (lo, lo + width)).collect()
    }
}

prop_compose! {
    fn arb_pivots()(pivots in prop::collection::btree_set(-1100i64..1100, 1..24))
        -> Vec<i64>
    {
        pivots.into_iter().collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batch_select_is_equivalent_to_sequential_replay(
        values in arb_column(),
        batch in arb_batch(),
    ) {
        let mut batched = CrackerColumn::from_values(values.clone());
        let mut sequential = CrackerColumn::from_values(values.clone());
        let ranges = batched.crack_select_batch(&batch);
        prop_assert_eq!(ranges.len(), batch.len());
        for (range, &(lo, hi)) in ranges.iter().zip(&batch) {
            let seq_range = sequential.crack_select(lo, hi);
            // Identical counts, and both equal the scan ground truth.
            prop_assert_eq!(
                (range.end - range.start) as u64,
                (seq_range.end - seq_range.start) as u64,
                "count mismatch on [{}, {})", lo, hi
            );
            prop_assert_eq!(
                (range.end - range.start) as u64,
                scan_count(&values, lo, hi),
                "scan mismatch on [{}, {})", lo, hi
            );
            // Identical contents as multisets.
            prop_assert_eq!(
                sorted(batched.view(range.clone()).to_vec()),
                sorted(sequential.view(seq_range).to_vec())
            );
        }
        // Order independence: identical final piece boundaries and bounds.
        prop_assert_eq!(batched.index(), sequential.index());
        prop_assert!(batched.validate(), "batch path broke invariants");
        prop_assert!(sequential.validate());
        prop_assert_eq!(sorted(batched.data().to_vec()), sorted(values));
    }

    #[test]
    fn batch_select_with_rowids_is_equivalent_and_aligned(
        values in arb_column(),
        batch in arb_batch(),
    ) {
        let mut batched = CrackerColumn::from_values_with_rowids(values.clone());
        let mut sequential = CrackerColumn::from_values_with_rowids(values.clone());
        let ranges = batched.crack_select_batch(&batch);
        for (range, &(lo, hi)) in ranges.iter().zip(&batch) {
            let _ = sequential.crack_select(lo, hi);
            let ids = batched.rowids_in(range.clone()).expect("rowids kept");
            for (&v, &id) in batched.view(range.clone()).iter().zip(ids) {
                prop_assert_eq!(values[id as usize], v, "rowid misaligned");
            }
        }
        prop_assert_eq!(batched.index(), sequential.index());
        prop_assert!(batched.validate());
    }

    #[test]
    fn crack_in_k_boundaries_match_repeated_crack_in_two(
        values in arb_column(),
        pivots in arb_pivots(),
    ) {
        let expected: Vec<usize> = pivots
            .iter()
            .map(|&p| {
                let mut d = values.clone();
                crack_in_two(&mut d, p)
            })
            .collect();
        let mut branchy = values.clone();
        prop_assert_eq!(crack_in_k(&mut branchy, &pivots), expected.clone());
        let mut pred = values.clone();
        prop_assert_eq!(crack_in_k_pred(&mut pred, &pivots), expected.clone());
        for (i, (&b, &p)) in expected.iter().zip(&pivots).enumerate() {
            prop_assert!(branchy[..b].iter().all(|&v| v < p), "region {} (branchy)", i);
            prop_assert!(branchy[b..].iter().all(|&v| v >= p));
            prop_assert!(pred[..b].iter().all(|&v| v < p), "region {} (pred)", i);
            prop_assert!(pred[b..].iter().all(|&v| v >= p));
        }
        prop_assert_eq!(sorted(branchy), sorted(values.clone()));
        prop_assert_eq!(sorted(pred), sorted(values));
    }

    #[test]
    fn batched_policies_stay_scan_equivalent(
        values in arb_column(),
        batch in arb_batch(),
        seed in 0u64..1000,
    ) {
        for policy in [
            CrackPolicy::Standard,
            CrackPolicy::Ddc { threshold: 64 },
            CrackPolicy::Ddr { threshold: 64 },
            CrackPolicy::Mdd1r,
        ] {
            let mut column = CrackerColumn::from_values(values.clone());
            let mut rng = StdRng::seed_from_u64(seed);
            let ranges = crack_select_batch_with_policy(&mut column, &batch, policy, &mut rng);
            for (range, &(lo, hi)) in ranges.iter().zip(&batch) {
                prop_assert_eq!(
                    (range.end - range.start) as u64,
                    scan_count(&values, lo, hi),
                    "{:?} wrong on [{}, {})", policy, lo, hi
                );
            }
            prop_assert!(column.validate(), "{:?} broke invariants", policy);
        }
    }

    #[test]
    fn concurrent_batch_path_matches_scan(
        values in arb_column(),
        batch in arb_batch(),
        seed in 0u64..1000,
    ) {
        let column = ConcurrentCrackerColumn::from_values(values.clone());
        let queries: Vec<(i64, i64, bool)> =
            batch.iter().map(|&(lo, hi)| (lo, hi, false)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome =
            column.select_batch_with_policy(&queries, CrackPolicy::Standard, &mut rng);
        for (answer, &(lo, hi)) in outcome.answers.iter().zip(&batch) {
            prop_assert_eq!(answer.count, scan_count(&values, lo, hi));
            let expected_sum: i128 = values
                .iter()
                .filter(|&&v| v >= lo && v < hi)
                .map(|&v| i128::from(v))
                .sum();
            prop_assert_eq!(answer.sum, expected_sum);
        }
        prop_assert!(column.validate());
    }
}
