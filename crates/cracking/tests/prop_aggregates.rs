//! Property-based tests for the per-piece aggregate cache: on arbitrary
//! data and operation sequences, every cached piece sum must equal a fresh
//! recomputation from the data, and resolved range aggregates must equal a
//! scan of the base values.
//!
//! Covered operation mixes:
//!
//! * two-way cracks (`crack_select`) and multi-pivot batch cracks
//!   (`crack_select_batch`), with and without row ids;
//! * random refinement actions (the idle-time building block);
//! * update merges (ripple insertion/deletion through
//!   `UpdatableCrackerColumn`), which grow and shrink the column;
//! * direct `PieceIndex` maintenance: sum-recorded splits interleaved with
//!   `grow`/`shrink` against a model data array;
//! * full sorts (`sort_fully`) interleaved with everything above: sorted
//!   pieces carry prefix-sum arrays that must stay exact through
//!   binary-search splits and ripple-patched update merges.

use proptest::prelude::*;

use holistic_cracking::{CrackerColumn, PieceIndex, UpdatableCrackerColumn};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scan_sum(values: &[i64], lo: i64, hi: i64) -> i128 {
    values
        .iter()
        .filter(|&&v| v >= lo && v < hi)
        .map(|&v| i128::from(v))
        .sum()
}

fn slice_sum(values: &[i64]) -> i128 {
    values.iter().map(|&v| i128::from(v)).sum()
}

/// The central coherence property: every `Some` piece sum equals a fresh
/// scan of exactly that piece's slice, and every prefix-sum array agrees
/// with a fresh recomputation over the piece's extent.
fn assert_cache_equals_recompute(c: &CrackerColumn) {
    for (i, p) in c.pieces().iter().enumerate() {
        if let Some(sum) = p.sum {
            assert_eq!(
                sum,
                slice_sum(&c.data()[p.start..p.end]),
                "piece {i} cached sum diverged"
            );
        }
        if let Some(prefix) = p.covering_prefix() {
            for pos in p.start..p.end {
                assert_eq!(
                    prefix.sum_range(p.start..pos + 1),
                    slice_sum(&c.data()[p.start..pos + 1]),
                    "piece {i} prefix diverged at position {pos}"
                );
            }
        }
    }
}

prop_compose! {
    fn arb_column()(values in prop::collection::vec(-1000i64..1000, 0..400)) -> Vec<i64> {
        values
    }
}

prop_compose! {
    fn arb_queries()(queries in prop::collection::vec((-1100i64..1100, -20i64..300), 1..30))
        -> Vec<(i64, i64)>
    {
        // Negative widths produce inverted (empty) ranges on purpose.
        queries.into_iter().map(|(lo, w)| (lo, lo + w)).collect()
    }
}

prop_compose! {
    /// Mixed operations: `(tag, a, b)` interpreted by `apply_op`.
    fn arb_ops()(ops in prop::collection::vec((0u8..7, -1100i64..1100, 0i64..300), 1..40))
        -> Vec<(u8, i64, i64)>
    {
        ops
    }
}

/// Interprets one mixed operation against the updatable column and the
/// reference multiset.
fn apply_op(
    u: &mut UpdatableCrackerColumn,
    reference: &mut Vec<i64>,
    op: (u8, i64, i64),
    rng: &mut StdRng,
) {
    let (tag, a, w) = op;
    match tag {
        // Range select: merges in-range pending updates, then cracks.
        0 | 1 => {
            let _ = u.select(a, a + w);
        }
        // Queue an insert.
        2 => {
            u.insert(a);
            reference.push(a);
        }
        // Queue a delete of a (probably) present value.
        3 => {
            if let Some(&v) = reference.get((w as usize) % reference.len().max(1)) {
                u.delete(v);
                let pos = reference.iter().position(|&x| x == v).unwrap();
                reference.remove(pos);
            }
        }
        // Merge everything that is pending.
        4 => u.merge_all(),
        // Full sort: collapses the index to one sorted, prefix-seeded
        // piece, so later selects split it by binary search and later
        // update merges exercise the ripple's prefix patching.
        5 => u.sort_fully(),
        // A couple of random refinement actions cannot be applied through
        // the updatable wrapper; emulate idle-time work with selects on
        // random bounds instead.
        _ => {
            let lo = (a % 1000).min(900);
            let _ = u.select(lo, lo + (w % 50));
            let _ = rng; // reserved for future op kinds
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_equals_recompute_after_two_way_cracks(
        values in arb_column(),
        queries in arb_queries(),
        with_rowids in any::<bool>(),
    ) {
        let mut c = if with_rowids {
            CrackerColumn::from_values_with_rowids(values.clone())
        } else {
            CrackerColumn::from_values(values.clone())
        };
        for &(lo, hi) in &queries {
            let r = c.crack_select(lo, hi);
            let agg = c.aggregate_range(r, lo, hi);
            prop_assert_eq!(agg.sum, scan_sum(&values, lo, hi), "[{}, {})", lo, hi);
            assert_cache_equals_recompute(&c);
            prop_assert!(c.validate());
        }
        // After any non-degenerate crack, every piece the pass produced
        // carries a cached sum; re-running the same queries is then pure
        // metadata.
        for &(lo, hi) in &queries {
            let r = c.crack_select(lo, hi);
            let agg = c.aggregate_range(r, lo, hi);
            prop_assert_eq!(agg.sum, scan_sum(&values, lo, hi));
            prop_assert_eq!(agg.scanned_values, 0, "resolved replay must be metadata-only");
        }
    }

    #[test]
    fn cache_equals_recompute_after_multi_pivot_batches(
        values in arb_column(),
        batch in arb_queries(),
        with_rowids in any::<bool>(),
    ) {
        let mut batched = if with_rowids {
            CrackerColumn::from_values_with_rowids(values.clone())
        } else {
            CrackerColumn::from_values(values.clone())
        };
        let mut sequential = batched.clone();
        let ranges = batched.crack_select_batch(&batch);
        for (r, &(lo, hi)) in ranges.iter().zip(&batch) {
            let agg = batched.aggregate_range(r.clone(), lo, hi);
            prop_assert_eq!(agg.sum, scan_sum(&values, lo, hi), "[{}, {})", lo, hi);
        }
        assert_cache_equals_recompute(&batched);
        prop_assert!(batched.validate());
        // The sequential replay produces the *identical* piece table —
        // including identical cached sums (Piece equality covers `sum`).
        for &(lo, hi) in &batch {
            let _ = sequential.crack_select(lo, hi);
        }
        prop_assert_eq!(batched.index(), sequential.index());
    }

    #[test]
    fn cache_equals_recompute_after_random_refinement(
        values in arb_column(),
        actions in 0u64..150,
        seed in any::<u64>(),
    ) {
        let mut c = CrackerColumn::from_values(values.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        c.random_cracks(actions, &mut rng);
        assert_cache_equals_recompute(&c);
        prop_assert!(c.validate());
        let agg = c.aggregate_range(0..c.len(), i64::MIN, i64::MAX);
        prop_assert_eq!(agg.sum, slice_sum(&values));
    }

    #[test]
    fn cache_equals_recompute_after_update_merges(
        values in arb_column(),
        ops in arb_ops(),
        seed in any::<u64>(),
        with_rowids in any::<bool>(),
    ) {
        let mut u = if with_rowids {
            UpdatableCrackerColumn::from_values_with_rowids(values.clone())
        } else {
            UpdatableCrackerColumn::from_values(values.clone())
        };
        let mut reference = values.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        for &op in &ops {
            apply_op(&mut u, &mut reference, op, &mut rng);
            assert_cache_equals_recompute(u.cracker());
            prop_assert!(u.validate());
        }
        // Flush everything and check the full aggregate against the model.
        u.merge_all();
        assert_cache_equals_recompute(u.cracker());
        let r = u.select(i64::MIN, i64::MAX);
        let agg = u.cracker().aggregate_range(r, i64::MIN, i64::MAX);
        prop_assert_eq!(agg.count as usize, reference.len());
        // i64::MAX is excluded by the half-open upper bound, but arb values
        // never reach it, so the full-range sum covers the whole multiset.
        prop_assert_eq!(agg.sum, slice_sum(&reference));
    }

    #[test]
    fn prefix_sums_survive_sorted_splits_interleaved_with_updates(
        values in arb_column(),
        ops in arb_ops(),
        seed in any::<u64>(),
        with_rowids in any::<bool>(),
    ) {
        // Start from a fully sorted, prefix-seeded column, then interleave
        // selects (binary-search splits sharing the prefix), inserts and
        // deletes (ripple patches), occasional re-sorts, and full merges.
        // After every operation the prefix arrays must equal a fresh
        // recomputation, and resolved aggregates must equal a model scan.
        let mut u = if with_rowids {
            UpdatableCrackerColumn::from_values_with_rowids(values.clone())
        } else {
            UpdatableCrackerColumn::from_values(values.clone())
        };
        u.sort_fully();
        prop_assert!(u.cracker().prefix_pieces() >= usize::from(!values.is_empty()));
        let mut reference = values.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        for &op in &ops {
            apply_op(&mut u, &mut reference, op, &mut rng);
            assert_cache_equals_recompute(u.cracker());
            prop_assert!(u.validate());
            // Sorted-piece aggregates answered read-only must match the
            // model — but only when no updates are pending in the probed
            // range (selects merge first; the read-only path does not).
            if u.pending_inserts() == 0 && u.pending_deletes() == 0 {
                let (lo, hi) = (op.1.min(900), op.1.min(900) + (op.2 % 80) + 1);
                if let Some(r) = u.cracker().select_if_answerable(lo, hi) {
                    let agg = u.cracker().aggregate_range(r, lo, hi);
                    let expected: i128 = reference
                        .iter()
                        .filter(|&&v| v >= lo && v < hi)
                        .map(|&v| i128::from(v))
                        .sum();
                    prop_assert_eq!(agg.sum, expected, "[{}, {}) read-only", lo, hi);
                    prop_assert_eq!(agg.scanned_values, 0, "[{}, {}) zero-read", lo, hi);
                }
            }
        }
        // Re-sort at the end: one sorted piece, prefix seeded, aggregates
        // exact over the final multiset.
        u.sort_fully();
        assert_cache_equals_recompute(u.cracker());
        let r = u.cracker().select_if_answerable(i64::MIN, i64::MAX)
            .expect("sorted column is always answerable");
        let agg = u.cracker().aggregate_range(r, i64::MIN, i64::MAX);
        prop_assert_eq!(agg.count as usize, reference.len());
        prop_assert_eq!(agg.sum, slice_sum(&reference));
        prop_assert_eq!(agg.scanned_values, 0);
    }

    #[test]
    fn index_sums_survive_direct_splits_grows_and_shrinks(
        initial in prop::collection::vec(-1000i64..1000, 1..200),
        ops in prop::collection::vec((0u8..4, -1100i64..1100, 1usize..8), 1..40),
    ) {
        // Model: a data array maintained alongside a bare PieceIndex. Splits
        // physically partition the model slice and record sums; grow appends
        // (cache-invalidating) values; shrink truncates.
        let mut data = initial.clone();
        let mut idx = PieceIndex::new(data.len());
        for &(tag, pivot, k) in &ops {
            match tag {
                // Sum-recorded split at `pivot` inside its current piece.
                0 | 1 => {
                    if idx.is_empty() {
                        continue;
                    }
                    let target = idx.find_piece_for_value(pivot).unwrap();
                    if idx.resolved_boundary(pivot).is_some() {
                        continue;
                    }
                    let p = idx.piece(target);
                    let slice = &mut data[p.start..p.end];
                    // Manual partition (the kernel equivalence is proven
                    // elsewhere; here we test the *index* maintenance).
                    let mut parts: Vec<i64> = slice.iter().copied().filter(|&v| v < pivot).collect();
                    let split = parts.len();
                    parts.extend(slice.iter().copied().filter(|&v| v >= pivot));
                    let lo_sum = slice_sum(&parts[..split]);
                    let total = slice_sum(&parts);
                    slice.copy_from_slice(&parts);
                    idx.split_with_sums(target, p.start + split, pivot, lo_sum, total);
                }
                // Grow: append k values (the appended tail is admissible
                // for the last piece only if its bounds allow; mirror the
                // updates module by relaxing nothing and accepting that the
                // last piece's sum is invalidated).
                2 => {
                    let last_hi = idx
                        .pieces()
                        .last()
                        .and_then(|p| p.lo)
                        .unwrap_or(0);
                    for i in 0..k {
                        data.push(last_hi.saturating_add(i as i64));
                    }
                    idx.grow(k);
                }
                // Shrink: drop k values from the end.
                _ => {
                    let k = k.min(data.len());
                    data.truncate(data.len() - k);
                    idx.shrink(k);
                }
            }
            prop_assert!(idx.validate(&data), "index invariants (incl. sums) violated");
        }
    }
}
