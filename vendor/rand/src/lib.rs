//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to a crates
//! registry, so the small slice of the `rand 0.8` API the workspace uses is
//! reimplemented here: [`Rng::gen_range`], [`Rng::gen`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! The generator is xoshiro256**, seeded through SplitMix64 — the same
//! construction the real `rand_xoshiro` crate uses. It is deterministic for
//! a given seed, which is all the experiments and tests rely on; it makes no
//! cryptographic claims whatsoever.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value from the standard distribution of `T` (uniform over
    /// the whole domain for integers, uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} must lie in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types samplable from their "standard" distribution (`rand::Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a uniform value can be drawn from (`rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = hi.wrapping_sub(lo).wrapping_add(1) as u64;
                if span == 0 {
                    // Full-domain inclusive range: every 64-bit word is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(i64, u64, i32, u32, usize, isize, u16, i16, u8, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample(rng);
        self.start + (self.end - self.start) * unit
    }
}

/// Seedable generators, mirroring the part of `rand::SeedableRng` in use.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically derived from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix cannot
            // produce four zero words from any seed, but keep the guard.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let different = (0..100).any(|_| a.gen_range(0u64..1000) != c.gen_range(0u64..1000));
        assert!(different);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w = rng.gen_range(1usize..=10);
            assert!((1..=10).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        // Must not panic or divide by a zero span.
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
    }
}
