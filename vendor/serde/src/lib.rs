//! Vendored, dependency-free stand-in for `serde`.
//!
//! The workload crate derives `Serialize` / `Deserialize` so users can plug
//! traces into serde-compatible formats; the build environment has no
//! registry access, so this crate supplies the two traits as markers plus
//! derives that emit empty impls. Swapping in the real `serde` is a
//! one-line change in the workspace manifest and requires no code changes.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

// The derives emit `impl ::serde::Serialize for …`; make that path resolve
// inside this crate's own tests too.
#[cfg(test)]
extern crate self as serde;

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Point {
        _x: i64,
        _y: i64,
    }

    #[derive(Serialize, Deserialize)]
    enum Shape {
        _Dot,
        _Line(i64),
    }

    fn assert_impls<T: Serialize + for<'de> Deserialize<'de>>() {}

    #[test]
    fn derives_produce_marker_impls() {
        assert_impls::<Point>();
        assert_impls::<Shape>();
    }
}
