//! Derive macros for the vendored `serde` stand-in.
//!
//! The stand-in's `Serialize` / `Deserialize` are marker traits, so the
//! derives only have to name the type: they scan the item's tokens for the
//! `struct` / `enum` / `union` keyword and emit an empty trait impl for the
//! identifier that follows. Generic types are not supported (nothing in this
//! workspace derives serde on a generic type); the macro fails loudly if it
//! meets one rather than emitting a wrong impl.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("expected a type name after `{kw}`, found {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = tokens.next() {
                    assert!(
                        p.as_char() != '<',
                        "the vendored serde derive does not support generic types \
                         (deriving on `{name}`)"
                    );
                }
                return name;
            }
        }
    }
    panic!("no struct/enum/union found in derive input");
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}
