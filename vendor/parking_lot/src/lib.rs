//! Vendored, dependency-free stand-in for `parking_lot`.
//!
//! Exposes the `parking_lot 0.12` lock API surface this workspace uses
//! (non-poisoning `read()` / `write()` / `lock()` that return guards
//! directly), implemented on top of `std::sync`. Poisoning is neutralized by
//! handing out the inner guard even after a panic, which matches
//! `parking_lot` semantics closely enough for the engine's latches.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with the `parking_lot` API shape.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Tries to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("inner", &&self.inner)
            .finish()
    }
}

/// A mutex with the `parking_lot` API shape.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Tries to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("inner", &&self.inner)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let lock = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *lock.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 400);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }
}
