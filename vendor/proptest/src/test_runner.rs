//! Test configuration and the deterministic per-test generator.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration of a `proptest!` block (subset of the real crate's).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of randomized cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the suite quick while
        // still exercising plenty of inputs. Tests that want more override
        // it via `with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// The random source strategies sample from.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates a generator deterministically seeded from a test name, so a
    /// given test sees the same input sequence on every run.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a generator from an explicit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
