//! Vendored, dependency-free stand-in for `proptest`.
//!
//! The build environment has no registry access, so the subset of the
//! proptest API this workspace's property tests use is reimplemented here:
//! the [`proptest!`] / [`prop_compose!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros, range / tuple / collection strategies,
//! [`any`] for `u64` and [`sample::Index`](prop::sample::Index), and
//! [`ProptestConfig::with_cases`](test_runner::ProptestConfig::with_cases).
//!
//! Semantics: each test runs `cases` iterations with inputs sampled from a
//! deterministic per-test generator (seeded from the test name, so failures
//! reproduce across runs). Unlike real proptest there is **no shrinking** —
//! a failing case reports the assertion message only. Swapping in the real
//! proptest is a manifest change; the test sources compile against either.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// Strategy constructors, mirroring the `proptest::prop` façade module.
pub mod prop {
    /// Collection strategies (`prop::collection`).
    pub mod collection {
        pub use crate::strategy::{btree_set, vec};
    }
    /// Sampling helpers (`prop::sample`).
    pub mod sample {
        pub use crate::strategy::Index;
    }
}

/// Types with a canonical whole-domain strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the whole-domain strategy for `T` (`proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Just;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest, Arbitrary,
        Strategy,
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn` runs `cases` times on sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Composes strategies into a named strategy-returning function.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $aty:ty),* $(,)?)(
        $($pat:pat in $strat:expr),* $(,)?
    ) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($arg: $aty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(
                move |__rng: &mut $crate::test_runner::TestRng| {
                    $(let $pat = $crate::Strategy::sample(&($strat), __rng);)*
                    $body
                },
            )
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn pairs()(v in prop::collection::vec((0i64..10, 0i64..5), 1..8)) -> Vec<(i64, i64)> {
            v
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_collections_respect_bounds(
            x in -5i64..5,
            y in 1usize..=4,
            values in prop::collection::vec(0u32..100, 0..20),
            set in prop::collection::btree_set(0u32..50, 0..10),
            seed in any::<u64>(),
            idx in any::<prop::sample::Index>(),
            (lo, width) in (0i64..100, 0i64..10),
            composed in pairs(),
        ) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!(values.len() < 20);
            prop_assert!(values.iter().all(|&v| v < 100));
            prop_assert!(set.len() < 10);
            let _ = seed;
            prop_assert!(idx.index(7) < 7);
            prop_assert!((0..100).contains(&lo) && (0..10).contains(&width));
            prop_assert!(!composed.is_empty() && composed.len() < 8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        let s = 0i64..1000;
        for _ in 0..50 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}
