//! Strategies: sources of random values for property tests.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;
use crate::Arbitrary;

/// A source of random values of one type.
///
/// The real proptest couples generation with shrinking via value trees; this
/// stand-in only generates, which keeps the trait to a single method.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i64, u64, i32, u32, usize, isize, u16, i16, u8, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// A strategy that always yields a clone of one value (`proptest::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A number of elements for a collection strategy.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange(r)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.0.clone())
    }
}

/// Strategy for `Vec`s with element strategy `S` (see [`vec()`]).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates `Vec`s whose length lies in `size` (`prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet`s (see [`btree_set`]).
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // The element domain may be smaller than the target size; bail out
        // after a bounded number of duplicate draws rather than spinning.
        let mut attempts = 0usize;
        while set.len() < target && attempts < 10 * (target + 1) {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}

/// Generates `BTreeSet`s with up to `size` elements
/// (`prop::collection::btree_set`).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// A strategy defined by a sampling closure (used by `prop_compose!`).
pub struct FnStrategy<F> {
    f: F,
}

impl<F> FnStrategy<F> {
    /// Wraps a sampling closure.
    pub fn new(f: F) -> Self {
        FnStrategy { f }
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Whole-domain strategy returned by [`crate::any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

impl<T> Default for AnyStrategy<T> {
    fn default() -> Self {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy::default()
            }
        }
    )*};
}

impl_any_int!(i64, u64, i32, u32, usize, u16, i16, u8, i8);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy::default()
    }
}

/// An index into a collection of yet-unknown size (`prop::sample::Index`).
///
/// Stores a random word; [`Index::index`] maps it onto `0..len` once the
/// length is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Maps this index onto a collection of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[must_use]
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Strategy for AnyStrategy<Index> {
    type Value = Index;
    fn sample(&self, rng: &mut TestRng) -> Index {
        Index(rng.gen_range(0u64..=u64::MAX))
    }
}

impl Arbitrary for Index {
    type Strategy = AnyStrategy<Index>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy::default()
    }
}
