//! Vendored, dependency-free stand-in for `criterion`.
//!
//! Implements the measurement core of the criterion API this workspace's
//! benches use — [`Criterion::benchmark_group`], [`BenchmarkGroup`]'s
//! `bench_function` / `bench_with_input` / `throughput`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], [`BenchmarkId`], [`Throughput`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros — with honest
//! wall-clock timing and plain-text min/median/max reports on stdout.
//! Statistical analysis, plotting and HTML reports are out of scope; the
//! real criterion drops in via the workspace manifest with no code changes.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in times every routine
/// invocation individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: one (or few) per batch in real criterion.
    LargeInput,
    /// Exactly one input per iteration.
    PerIteration,
}

/// Measured throughput basis for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Collects timing samples for one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Nanoseconds per routine invocation, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    fn with_sample_size(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Times `routine`, batching invocations so each sample spans at least
    /// one millisecond of wall clock.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut iters: u64 = 1;
        // Calibrate the batch size on the fly (doubling warm-up runs).
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warm-up invocation outside the samples.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// The benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let sample_size = self.sample_size;
        run_benchmark(&id.into().id, sample_size, None, |b| f(b));
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the throughput basis reported for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&id, self.sample_size, self.throughput, |b| f(b));
    }

    /// Benchmarks a closure parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.id);
        run_benchmark(&id, self.sample_size, self.throughput, |b| f(b, input));
    }

    /// Ends the group (report flushing happens per benchmark).
    pub fn finish(self) {}
}

fn run_benchmark(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher::with_sample_size(sample_size);
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{id:<50} (no samples collected)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];
    let mut line = format!(
        "{id:<50} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
    match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            let rate = n as f64 / (median * 1e-9);
            line.push_str(&format!("  thrpt: {} elem/s", fmt_rate(rate)));
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            let rate = n as f64 / (median * 1e-9);
            line.push_str(&format!("  thrpt: {} B/s", fmt_rate(rate)));
        }
        _ => {}
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec < 1e3 {
        format!("{per_sec:.1}")
    } else if per_sec < 1e6 {
        format!("{:.2} K", per_sec / 1e3)
    } else if per_sec < 1e9 {
        format!("{:.2} M", per_sec / 1e6)
    } else {
        format!("{:.2} G", per_sec / 1e9)
    }
}

/// Declares a benchmark group function (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_collects_samples() {
        let mut b = Bencher::with_sample_size(5);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn bencher_iter_batched_collects_samples() {
        let mut b = Bencher::with_sample_size(4);
        b.iter_batched(
            || vec![3u64, 1, 2],
            |mut v| {
                v.sort_unstable();
                v
            },
            BatchSize::LargeInput,
        );
        assert_eq!(b.samples.len(), 4);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("f", 10), &10usize, |b, &n| {
            b.iter_batched(|| n, |n| n * 2, BatchSize::SmallInput);
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| 2 + 2));
    }

    #[test]
    fn formatting_scales() {
        assert!(fmt_ns(10.0).contains("ns"));
        assert!(fmt_ns(10_000.0).contains("µs"));
        assert!(fmt_ns(10_000_000.0).contains("ms"));
        assert!(fmt_rate(5e6).contains('M'));
    }
}
