//! The paper's motivating scenario: an astronomy archive.
//!
//! New data arrives daily; scientists have a standing set of queries (good
//! fit for offline-style preparation) but also explore interactively
//! (unpredictable ranges, bursts of queries followed by idle time while
//! they study the results). The holistic kernel serves all three phases
//! with the same machinery:
//!
//! 1. a-priori idle time is spread over all columns as partial indexes,
//! 2. exploratory queries crack further exactly where they need it,
//! 3. think-time pauses between query bursts are exploited automatically by
//!    the background tuner.
//!
//! Run with `cargo run --release --example astronomy_exploration -p holistic-core`.

use std::sync::Arc;
use std::time::Duration;

use holistic_core::background::{BackgroundConfig, BackgroundTuner};
use holistic_core::{Database, HolisticConfig, IdleBudget, IndexingStrategy, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const STARS: usize = 2_000_000;

fn main() {
    let mut rng = StdRng::seed_from_u64(1969);
    let mut db = Database::new(HolisticConfig::default(), IndexingStrategy::Holistic);

    // The star catalog: right ascension, declination, magnitude, redshift.
    let columns: Vec<(&str, Vec<i64>)> = vec![
        (
            "right_ascension",
            (0..STARS).map(|_| rng.gen_range(0..360_000)).collect(),
        ),
        (
            "declination",
            (0..STARS).map(|_| rng.gen_range(-90_000..90_000)).collect(),
        ),
        (
            "magnitude",
            (0..STARS).map(|_| rng.gen_range(-2_000..30_000)).collect(),
        ),
        (
            "redshift_milli",
            (0..STARS).map(|_| rng.gen_range(0..8_000)).collect(),
        ),
    ];
    let table = db.create_table("stars", columns).unwrap();
    let cols = db.column_ids(table).unwrap();
    println!(
        "loaded star catalog: {} rows x {} attributes",
        STARS,
        cols.len()
    );

    // Phase 1 — overnight idle time before the scientists arrive. Instead of
    // fully sorting one or two attributes, spread partial indexing over all.
    let report = db.run_idle(IdleBudget::Actions(2_000));
    println!(
        "overnight tuning: {} refinement actions across {} columns in {:?}",
        report.actions_applied,
        report.columns_touched.len(),
        report.elapsed
    );

    // Phase 2 — interactive exploration: drill into a sky region, then refine
    // by magnitude, then by redshift. Each query cracks exactly the ranges
    // the scientist cares about.
    let ra = cols[0];
    let dec = cols[1];
    let mag = cols[2];
    let red = cols[3];
    let drill_downs = [
        (ra, 120_000, 125_000, "RA slice around 12h"),
        (dec, 10_000, 20_000, "northern band"),
        (mag, -2_000, 6_000, "bright objects"),
        (red, 2_000, 2_200, "redshift window"),
        (ra, 121_000, 122_000, "narrower RA slice"),
        (mag, 0, 3_000, "very bright objects"),
    ];
    println!("\nexploratory session:");
    for (col, lo, hi, label) in drill_downs {
        let result = db.execute(&Query::range(col, lo, hi)).unwrap();
        println!(
            "  {label:<26} -> {:>8} objects in {:?}",
            result.count, result.latency
        );
    }

    // Phase 3 — the scientist reads plots for a while; the background tuner
    // notices the pause and keeps refining the hottest attributes.
    let shared = db.into_shared();
    let tuner = BackgroundTuner::spawn(
        Arc::clone(&shared),
        BackgroundConfig {
            idle_threshold: Duration::from_millis(5),
            batch_actions: 128,
            poll_interval: Duration::from_millis(1),
            seed_prefix_sums: true,
            snapshot_on_idle: false,
            scrub_pieces: 64,
        },
    );
    std::thread::sleep(Duration::from_millis(200)); // think time
    let background_actions = tuner.stop();
    println!("\nwhile the scientist was thinking, the background tuner applied {background_actions} refinement actions");

    // Phase 4 — the next burst of queries benefits from everything above.
    let db = Arc::try_unwrap(shared).expect("no other refs").into_inner();
    let result = db.execute(&Query::range(ra, 120_500, 121_500)).unwrap();
    println!(
        "next-morning query on RA: {} objects in {:?} ({} pieces on RA)",
        result.count,
        result.latency,
        db.piece_count(ra)
    );
}
