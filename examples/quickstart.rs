//! Quickstart: load a table, run range queries under holistic indexing, and
//! watch the column get faster both from queries and from idle time.
//!
//! This is the full-scale, timing-instrumented twin of the crate-level
//! doctest in `holistic-core` (`crates/core/src/lib.rs`): both follow the
//! same numbered sequence, and `cargo test --doc` exercises the doctest
//! version in CI so the happy path can never silently break.
//!
//! Run with `cargo run --release --example quickstart`.

use holistic_core::{Database, HolisticConfig, IdleBudget, IndexingStrategy, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 1. Create an engine that uses holistic indexing for its selects.
    let mut db = Database::new(HolisticConfig::default(), IndexingStrategy::Holistic);

    // 2. Load a table: one million uniformly distributed integers.
    let n: i64 = 1_000_000;
    let mut rng = StdRng::seed_from_u64(7);
    let values: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=n)).collect();
    let table = db
        .create_table("readings", vec![("temperature", values)])
        .unwrap();
    let col = db.column_id(table, "temperature").unwrap();

    // 3. Run a few exploratory range queries. Every query physically
    //    reorganizes ("cracks") the column a little, so queries get faster.
    println!("query                         rows     latency       pieces");
    for i in 0..8 {
        let lo = 1 + i * (n / 10);
        let hi = lo + n / 100;
        let result = db.execute(&Query::range(col, lo, hi)).unwrap();
        println!(
            "[{lo:>9}, {hi:>9})  {:>9}  {:>9.1?}  {:>9}",
            result.count,
            result.latency,
            db.piece_count(col)
        );
    }

    // 4. The workload pauses. A holistic kernel spends the idle time on
    //    auxiliary refinement actions, guided by the statistics it kept.
    let report = db.run_idle(IdleBudget::Actions(500));
    println!(
        "\nidle window: applied {} refinement actions to {:?} in {:?}",
        report.actions_applied, report.columns_touched, report.elapsed
    );

    // 5. Queries after the idle window are faster still.
    let result = db
        .execute(&Query::range(col, n / 2, n / 2 + n / 100))
        .unwrap();
    println!(
        "\npost-idle query: {} rows in {:?} ({} pieces now)",
        result.count,
        result.latency,
        db.piece_count(col)
    );

    // 6. The observed workload can be handed to the offline advisor at any
    //    time, e.g. to decide whether a full index is worth building.
    let summary = db.observed_workload();
    println!(
        "\nobserved workload: {} queries over {} column(s)",
        summary.total_queries(),
        summary.column_count()
    );
}
