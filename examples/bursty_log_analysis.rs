//! Web-log analysis with bursty traffic: the "no idle time vs bursts of
//! idle time" scenario from the paper's motivation (social networks, web
//! logs: "we may have bursts of queries followed by long stretches of idle
//! time").
//!
//! The same bursty trace is replayed against plain adaptive indexing (which
//! wastes the gaps between bursts) and holistic indexing (which spends them
//! on refinement), and the per-burst latency is reported.
//!
//! Run with `cargo run --release --example bursty_log_analysis -p holistic-core`.

use holistic_core::{Database, HolisticConfig, IdleBudget, IndexingStrategy, Query};
use holistic_workload::{
    ArrivalModel, IdleWindow, SessionBuilder, WorkloadEvent, ZipfRangeGenerator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const ROWS: usize = 1_500_000;
const BURSTS: usize = 8;
const QUERIES_PER_BURST: usize = 50;

fn build_db(strategy: IndexingStrategy) -> (Database, Vec<holistic_core::ColumnId>) {
    let mut rng = StdRng::seed_from_u64(404);
    let mut db = Database::new(HolisticConfig::default(), strategy);
    let columns: Vec<(&str, Vec<i64>)> = vec![
        ("timestamp", (0..ROWS as i64).collect()),
        ("status_code", {
            let mut v: Vec<i64> = (0..ROWS)
                .map(|_| [200, 200, 200, 304, 404, 500][rand::Rng::gen_range(&mut rng, 0usize..6)])
                .collect();
            v.rotate_left(ROWS / 3);
            v
        }),
        (
            "latency_us",
            (0..ROWS)
                .map(|_| rand::Rng::gen_range(&mut rng, 100..1_000_000))
                .collect(),
        ),
        (
            "bytes_sent",
            (0..ROWS)
                .map(|_| rand::Rng::gen_range(&mut rng, 0..5_000_000))
                .collect(),
        ),
    ];
    let table = db.create_table("requests", columns).unwrap();
    let cols = db.column_ids(table).unwrap();
    (db, cols)
}

fn bursty_trace() -> Vec<WorkloadEvent> {
    // Analysts mostly slice by latency and bytes, skewed toward the slow /
    // large tail — a zipf generator over the latency domain captures that.
    let mut generator = ZipfRangeGenerator::new(0, 100, 1_000_000, 0.02, 32, 1.1);
    let mut rng = StdRng::seed_from_u64(9);
    SessionBuilder::new(ArrivalModel::Bursty {
        burst_len: QUERIES_PER_BURST,
        actions: 400,
    })
    .build(&mut generator, BURSTS * QUERIES_PER_BURST, &mut rng)
}

fn replay(
    db: &mut Database,
    cols: &[holistic_core::ColumnId],
    events: &[WorkloadEvent],
    exploit_idle: bool,
) -> Vec<Duration> {
    // Alternate the analysed column between latency (2) and bytes (3).
    let mut burst_latencies = Vec::new();
    let mut current_burst = Duration::ZERO;
    let mut queries_in_burst = 0usize;
    let mut flip = 0usize;
    for event in events {
        match event {
            WorkloadEvent::Query(q) => {
                let col = cols[2 + (flip / QUERIES_PER_BURST) % 2];
                flip += 1;
                let result = db.execute(&Query::range(col, q.lo, q.hi)).unwrap();
                current_burst += result.latency;
                queries_in_burst += 1;
                if queries_in_burst == QUERIES_PER_BURST {
                    burst_latencies.push(current_burst);
                    current_burst = Duration::ZERO;
                    queries_in_burst = 0;
                }
            }
            WorkloadEvent::Idle(IdleWindow::Actions(a)) => {
                if exploit_idle {
                    db.run_idle(IdleBudget::Actions(*a));
                }
            }
            WorkloadEvent::Idle(IdleWindow::Micros(m)) => {
                if exploit_idle {
                    db.run_idle(IdleBudget::Duration(Duration::from_micros(*m)));
                }
            }
        }
    }
    if queries_in_burst > 0 {
        burst_latencies.push(current_burst);
    }
    burst_latencies
}

fn main() {
    let events = bursty_trace();
    println!(
        "bursty log analysis: {BURSTS} bursts of {QUERIES_PER_BURST} queries over a {ROWS}-row request log\n"
    );

    let (mut adaptive_db, cols) = build_db(IndexingStrategy::Adaptive);
    let adaptive = replay(&mut adaptive_db, &cols, &events, false);

    let (mut holistic_db, hcols) = build_db(IndexingStrategy::Holistic);
    let holistic = replay(&mut holistic_db, &hcols, &events, true);

    println!(
        "{:>8} {:>20} {:>20}",
        "burst", "adaptive (ms)", "holistic (ms)"
    );
    for (i, (a, h)) in adaptive.iter().zip(holistic.iter()).enumerate() {
        println!(
            "{:>8} {:>20.2} {:>20.2}",
            i + 1,
            a.as_secs_f64() * 1e3,
            h.as_secs_f64() * 1e3
        );
    }
    let total_a: Duration = adaptive.iter().sum();
    let total_h: Duration = holistic.iter().sum();
    println!(
        "\ntotal query time: adaptive {:.1} ms, holistic {:.1} ms ({} auxiliary actions applied between bursts)",
        total_a.as_secs_f64() * 1e3,
        total_h.as_secs_f64() * 1e3,
        holistic_db.metrics().auxiliary_actions()
    );
}
