//! Offline advisor with a limited build budget vs holistic spreading —
//! the paper's Exp2 scenario as a worked example.
//!
//! The workload is known a priori and would like all columns indexed, but
//! the available idle time only pays for a couple of full sorts. The
//! offline advisor picks the best indexes it can afford; the holistic
//! kernel instead spreads the same idle time over *all* columns as partial
//! indexes. The example prints the advisor's reasoning and then compares
//! end-to-end workload times.
//!
//! Run with `cargo run --release --example advisor_comparison -p holistic-core`.

use std::time::{Duration, Instant};

use holistic_core::{Database, HolisticConfig, IndexingStrategy, Query};
use holistic_offline::{Advisor, WorkloadSummary};
use holistic_workload::{QueryGenerator, RoundRobinColumns, UniformRangeGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const COLUMNS: usize = 6;
const ROWS: usize = 800_000;
const QUERIES: usize = 600;

fn build_db(strategy: IndexingStrategy) -> (Database, Vec<holistic_core::ColumnId>) {
    let mut db = Database::new(HolisticConfig::default(), strategy);
    let mut rng = StdRng::seed_from_u64(33);
    let names: Vec<String> = (0..COLUMNS).map(|i| format!("a{i}")).collect();
    let data: Vec<(&str, Vec<i64>)> = names
        .iter()
        .map(|name| {
            (
                name.as_str(),
                (0..ROWS).map(|_| rng.gen_range(1..=ROWS as i64)).collect(),
            )
        })
        .collect();
    let table = db.create_table("facts", data).unwrap();
    let cols = db.column_ids(table).unwrap();
    (db, cols)
}

fn main() {
    // The known workload: all columns equally hot, 1% selectivity.
    let (offline_db, cols) = build_db(IndexingStrategy::Offline);
    let mut offline_db = offline_db;
    let mut workload = WorkloadSummary::new();
    for &c in &cols {
        workload.declare(c, (QUERIES / COLUMNS) as u64, 0.01);
    }

    // Ask the advisor what it would build with an unlimited budget.
    let advisor = Advisor::new();
    let candidates = advisor.candidates(&workload, |_| ROWS);
    println!("advisor candidates (benefit in abstract work units):");
    for c in &candidates {
        println!(
            "  column {:>6}  benefit {:>14.0}  build cost {:>12.0}  benefit/cost {:>6.2}",
            c.column.to_string(),
            c.benefit,
            c.build_cost,
            c.benefit_per_cost()
        );
    }

    // The a-priori idle time only pays for two full sorts.
    let mut build_time = Duration::ZERO;
    for &c in cols.iter().take(2) {
        build_time += offline_db.build_full_index(c).unwrap();
    }
    println!(
        "\noffline: built full indexes on 2 of {COLUMNS} columns in {:.1} ms (the idle budget)",
        build_time.as_secs_f64() * 1e3
    );

    // Holistic: spend a comparable preparation effort as partial indexes
    // spread over every column.
    let (holistic_db, hcols) = build_db(IndexingStrategy::Holistic);
    let prep_start = Instant::now();
    for &c in &hcols {
        holistic_db.warm_column(c, 100).unwrap();
    }
    println!(
        "holistic: applied 100 cracks to each of {COLUMNS} columns in {:.1} ms",
        prep_start.elapsed().as_secs_f64() * 1e3
    );

    // Replay the same round-robin workload against both.
    let inner = UniformRangeGenerator::new(0, 1, ROWS as i64 + 1, 0.01);
    let mut generator = RoundRobinColumns::new(inner, COLUMNS);
    let mut rng = StdRng::seed_from_u64(8);
    let queries: Vec<_> = (0..QUERIES)
        .map(|_| generator.next_query(&mut rng))
        .collect();

    let mut offline_total = Duration::ZERO;
    let mut holistic_total = Duration::ZERO;
    for q in &queries {
        offline_total += offline_db
            .execute(&Query::range(cols[q.column], q.lo, q.hi))
            .unwrap()
            .latency;
        holistic_total += holistic_db
            .execute(&Query::range(hcols[q.column], q.lo, q.hi))
            .unwrap()
            .latency;
    }
    println!(
        "\nworkload of {QUERIES} round-robin queries:\n  offline (2 full indexes): {:>10.1} ms\n  holistic (partial on all): {:>10.1} ms",
        offline_total.as_secs_f64() * 1e3,
        holistic_total.as_secs_f64() * 1e3
    );
    let (scan, index, crack) = offline_db.metrics().path_breakdown();
    println!("  offline access paths: {scan} scans, {index} index probes, {crack} cracks");
    let (scan, index, crack) = holistic_db.metrics().path_breakdown();
    println!("  holistic access paths: {scan} scans, {index} index probes, {crack} cracks");
}
