//! Multi-threaded stress tests for sharded cracker columns: many threads
//! crack *disjoint shards of the same column* in parallel — the scaling
//! mechanism the sharding refactor exists for — while paranoia-mode
//! validation re-checks every shard's invariants behind each operation.
//!
//! Two levels are stressed:
//!
//! * the cracking layer directly (`ConcurrentCrackerColumn` with a small
//!   shard extent, hammered by query and refinement threads), and
//! * the whole engine (shared `Database` with `shard_extent` set, query
//!   threads racing a writer and the background tuner).
//!
//! Runs under `--release` in CI and under ThreadSanitizer in the nightly
//! job, where the per-shard latches' synchronization edges are checked by
//! the instrumented runtime rather than by luck.

use std::sync::Arc;

use holistic_cracking::ConcurrentCrackerColumn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(1..=n as i64)).collect()
}

fn scan_count(values: &[i64], lo: i64, hi: i64) -> u64 {
    values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
}

/// Cracking layer: eight threads fire narrow queries at a column split
/// into 32 shards. Narrow ranges usually touch one or two shards, so most
/// of the time the threads hold latches on *different* shards and crack
/// truly in parallel; the assertions check answers against a sequential
/// scan and the shard invariants after every round.
#[test]
fn parallel_threads_crack_disjoint_shards_of_one_column() {
    let n = 64_000;
    let extent = 2_000; // 32 shards
    let values = dataset(n, 11);
    let column = Arc::new(ConcurrentCrackerColumn::from_values_sharded(
        values.clone(),
        extent,
    ));
    assert_eq!(column.shard_count(), n / extent);

    let mut handles = Vec::new();
    for t in 0..8u64 {
        let column = Arc::clone(&column);
        let values = values.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(100 + t);
            for round in 0..60 {
                let lo = rng.gen_range(1..=(n as i64 - 700));
                let hi = lo + rng.gen_range(1i64..600);
                assert_eq!(
                    column.count(lo, hi),
                    scan_count(&values, lo, hi),
                    "thread {t} round {round}"
                );
                if round % 4 == 0 {
                    let materialized = column.materialize(lo, hi);
                    assert_eq!(materialized.len() as u64, scan_count(&values, lo, hi));
                    assert!(materialized.iter().all(|&v| v >= lo && v < hi));
                }
                if round % 8 == 0 {
                    column.random_crack(&mut rng);
                }
                assert!(
                    holistic_sync::held_locks().is_empty(),
                    "thread {t} leaked a latch at round {round}"
                );
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
    assert!(column.validate(), "shard invariants violated under stress");
    assert!(
        column.piece_count() > column.shard_count(),
        "cracking should have split shards into pieces"
    );
    // Piece tables across shards compose back to the full multiset.
    let mut all = column.materialize(i64::MIN, i64::MAX);
    all.sort_unstable();
    let mut want = values;
    want.sort_unstable();
    assert_eq!(all, want);
}

/// Engine level: a sharded shared engine under fire from query threads, a
/// writer and the background tuner. Paranoia mode (on in the test profile,
/// and forced on via `HOLISTIC_PARANOIA=1` in the nightly TSan job)
/// validates every touched shard after every engine call.
#[test]
fn sharded_shared_engine_stress_with_writer_and_tuner() {
    use holistic_core::{
        BackgroundConfig, BackgroundTuner, Database, HolisticConfig, IdleBudget, IndexingStrategy,
        Query,
    };
    use std::time::Duration;

    let n = 40_000;
    let inserts_per_writer = 64i64;
    let values = dataset(n, 23);
    let config = HolisticConfig::for_testing().with_shard_extent(4_096); // 10 shards
    let mut db = Database::new(config, IndexingStrategy::Holistic);
    let table = db
        .create_table("r", vec![("a", values.clone())])
        .expect("create table");
    let col = db.column_id(table, "a").expect("column id");

    // Expected answers, precomputed sequentially. The writer inserts
    // values > n only, so these sub-domain ranges keep exact answers while
    // the column grows (and spills new shards) underneath.
    let expected: Vec<(i64, i64, u64)> = (0..20)
        .map(|i| {
            let lo = 1 + (i * 1999) % (n as i64 - 900);
            let hi = lo + 887;
            (lo, hi, scan_count(&values, lo, hi))
        })
        .collect();

    let db = db.into_shared();
    let tuner = BackgroundTuner::spawn(
        Arc::clone(&db),
        BackgroundConfig {
            idle_threshold: Duration::ZERO,
            batch_actions: 32,
            poll_interval: Duration::from_micros(100),
            seed_prefix_sums: true,
            snapshot_on_idle: false,
            scrub_pieces: 64,
        },
    );

    let mut handles = Vec::new();
    for t in 0..4u64 {
        let db = Arc::clone(&db);
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..8 {
                for &(lo, hi, want) in &expected {
                    let r = db
                        .read()
                        .execute(&Query::range(col, lo, hi))
                        .expect("query");
                    assert_eq!(r.count, want, "thread {t} round {round}");
                }
                assert!(holistic_sync::held_locks().is_empty());
            }
        }));
    }
    // Two writers: their inserts land in the last shard and spill fresh
    // shards once it fills, racing the readers' fan-outs.
    for w in 0..2i64 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for j in 0..inserts_per_writer {
                db.write()
                    .insert(col, n as i64 + 1 + w * inserts_per_writer + j)
                    .expect("insert");
            }
            assert!(holistic_sync::held_locks().is_empty());
        }));
    }
    // An idle-driver thread forcing run_idle through the read side, so
    // tuner-style refinement races both readers and writers.
    {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for _ in 0..10 {
                let _ = db.read().run_idle(IdleBudget::Actions(8));
            }
            assert!(holistic_sync::held_locks().is_empty());
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
    tuner.stop();

    let guard = db.read();
    assert!(guard.validate(), "shard invariants violated under stress");
    for &(lo, hi, want) in &expected {
        assert_eq!(
            guard
                .execute(&Query::range(col, lo, hi))
                .expect("recheck")
                .count,
            want
        );
    }
    // Every writer insert is visible: the spilled shards answer exactly.
    let above = guard
        .execute(&Query::range(col, n as i64 + 1, i64::MAX))
        .expect("above-domain query");
    assert_eq!(above.count, 2 * inserts_per_writer as u64);
}
