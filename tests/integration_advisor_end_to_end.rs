//! End-to-end tests of the advisory pipeline: workload knowledge (declared
//! a priori or observed by the monitor) flows into the offline advisor, the
//! online tuner, and the holistic ranking model, and each produces physical
//! designs consistent with the knowledge.

use holistic_core::{Database, HolisticConfig, IdleBudget, IndexingStrategy, Query};
use holistic_offline::{Advisor, CostModel, OfflineIndexBuilder, SortedIndex, WorkloadSummary};
use holistic_online::{ColtPolicy, OnlineTuner};
use holistic_storage::{Column, ColumnId, TableId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 50_000;

fn dataset(seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ROWS).map(|_| rng.gen_range(1..=ROWS as i64)).collect()
}

#[test]
fn advisor_recommendations_respect_skew_and_budget() {
    let advisor = Advisor::new();
    let model = advisor.model().clone();
    let mut workload = WorkloadSummary::new();
    let hot = ColumnId::new(TableId(0), 0);
    let warm = ColumnId::new(TableId(0), 1);
    let cold = ColumnId::new(TableId(0), 2);
    workload.declare(hot, 10_000, 0.01);
    workload.declare(warm, 500, 0.01);
    workload.declare(cold, 2, 0.01);

    // Unlimited budget: hot and warm pay off, the two-query column does not.
    let unlimited = advisor.recommend(&workload, |_| ROWS, f64::INFINITY);
    let picked: Vec<ColumnId> = unlimited.iter().map(|r| r.column).collect();
    assert!(picked.contains(&hot) && picked.contains(&warm));
    assert!(!picked.contains(&cold));

    // Budget for a single build: the hot column wins.
    let single = advisor.recommend(&workload, |_| ROWS, model.full_build_cost(ROWS) * 1.2);
    assert_eq!(single.len(), 1);
    assert_eq!(single[0].column, hot);

    // The builder materializes exactly what fits.
    let columns: Vec<Column> = (0..3)
        .map(|i| Column::from_values(format!("c{i}"), dataset(i as u64)))
        .collect();
    let outcome = OfflineIndexBuilder::new().build_within_budget(
        &unlimited,
        model.full_build_cost(ROWS) * 1.2,
        |id| columns.get(id.column as usize),
    );
    assert_eq!(outcome.built.len(), 1);
    assert!(outcome.built.contains_key(&hot));
}

#[test]
fn what_if_costs_predict_the_right_winner() {
    // The configuration the advisor prefers must actually be the faster one
    // when executed by the engine.
    let mut workload = WorkloadSummary::new();
    let mut db_indexed = Database::new(HolisticConfig::default(), IndexingStrategy::Offline);
    let mut db_scan = Database::new(HolisticConfig::default(), IndexingStrategy::ScanOnly);
    let t1 = db_indexed
        .create_table("r", vec![("a", dataset(1))])
        .unwrap();
    db_scan.create_table("r", vec![("a", dataset(1))]).unwrap();
    let col = db_indexed.column_id(t1, "a").unwrap();
    workload.declare(col, 500, 0.01);

    let report = db_indexed.prepare_offline(&workload, None);
    assert_eq!(report.built, vec![col]);

    let mut rng = StdRng::seed_from_u64(2);
    let queries: Vec<(i64, i64)> = (0..200)
        .map(|_| {
            let lo = rng.gen_range(1..=(ROWS as i64 - 600));
            (lo, lo + 500)
        })
        .collect();
    let mut indexed_total = std::time::Duration::ZERO;
    let mut scan_total = std::time::Duration::ZERO;
    for &(lo, hi) in &queries {
        indexed_total += db_indexed
            .execute(&Query::range(col, lo, hi))
            .unwrap()
            .latency;
        scan_total += db_scan.execute(&Query::range(col, lo, hi)).unwrap().latency;
    }
    assert!(
        indexed_total < scan_total,
        "index probes ({indexed_total:?}) should beat scans ({scan_total:?})"
    );
}

#[test]
fn online_tuner_and_sorted_index_agree_with_the_base_data() {
    let values = dataset(3);
    let base = Column::from_values("a", values.clone());
    let model = CostModel::new();
    let mut policy = ColtPolicy::new();
    policy.horizon_epochs = 8.0;
    let mut tuner = OnlineTuner::with_policy(20, policy);
    let col = ColumnId::new(TableId(0), 0);
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..100 {
        let lo = rng.gen_range(1..=(ROWS as i64 - 600));
        tuner.record_and_tune(col, lo, lo + 500, 0.01, model.scan_cost(ROWS), |_| {
            Some(base.clone())
        });
    }
    assert!(
        tuner.has_index(col),
        "hot column should have been indexed online"
    );
    let idx = tuner.index(col).unwrap();
    for _ in 0..20 {
        let lo = rng.gen_range(1..=(ROWS as i64 - 600));
        let expected = values.iter().filter(|&&v| v >= lo && v < lo + 500).count() as u64;
        assert_eq!(idx.count(lo, lo + 500), expected);
    }
}

#[test]
fn holistic_knowledge_flows_into_the_advisor_and_back() {
    // Observe a workload holistically, ask the advisor what to build with a
    // limited budget, build it, and verify the holistic engine uses it.
    let mut db = Database::new(HolisticConfig::default(), IndexingStrategy::Holistic);
    let t = db
        .create_table("r", vec![("a", dataset(5)), ("b", dataset(6))])
        .unwrap();
    let cols = db.column_ids(t).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..150 {
        let col = if i % 10 == 0 { cols[1] } else { cols[0] };
        let lo = rng.gen_range(1..=(ROWS as i64 - 600));
        db.execute(&Query::range(col, lo, lo + 500)).unwrap();
    }
    db.run_idle(IdleBudget::Actions(100));

    let summary = db.observed_workload();
    let advisor = Advisor::new();
    let picks = advisor.recommend(
        &summary,
        |_| ROWS,
        advisor.model().full_build_cost(ROWS) * 1.5,
    );
    assert_eq!(picks.len(), 1);
    assert_eq!(picks[0].column, cols[0], "the hot column should be picked");
    db.build_full_index(picks[0].column).unwrap();
    let r = db.execute(&Query::range(cols[0], 100, 600)).unwrap();
    assert_eq!(r.path, holistic_core::AccessPath::FullIndex);
    // The cold column keeps being served adaptively.
    let r = db.execute(&Query::range(cols[1], 100, 600)).unwrap();
    assert_eq!(r.path, holistic_core::AccessPath::Crack);
}

#[test]
fn sorted_index_and_scan_agree_on_arbitrary_data() {
    let values = dataset(8);
    let idx = SortedIndex::build_from_values(&values);
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..100 {
        let lo = rng.gen_range(-100..=(ROWS as i64 + 100));
        let hi = lo + rng.gen_range(0i64..2_000);
        let expected = values.iter().filter(|&&v| v >= lo && v < hi).count() as u64;
        assert_eq!(idx.count(lo, hi), expected);
    }
}
