//! Integration tests for the update path (cracking under pending
//! inserts/deletes) and for concurrent access to cracker columns — the two
//! substrate features the paper inherits from the adaptive-indexing
//! literature ([11] updates, [7] concurrency control).

use std::sync::Arc;

use holistic_cracking::{ConcurrentCrackerColumn, UpdatableCrackerColumn};
use holistic_storage::Column;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(1..=n as i64)).collect()
}

fn scan_count(values: &[i64], lo: i64, hi: i64) -> u64 {
    values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
}

#[test]
fn updatable_cracker_column_tracks_a_mutating_reference_set() {
    let n = 10_000;
    let mut reference = dataset(n, 1);
    let mut column = UpdatableCrackerColumn::from_values(reference.clone());
    let mut rng = StdRng::seed_from_u64(2);

    for round in 0..200 {
        match round % 4 {
            // Query a random range.
            0 | 2 => {
                let lo = rng.gen_range(1..=(n as i64 - 200));
                let hi = lo + rng.gen_range(1i64..500);
                assert_eq!(
                    column.count(lo, hi),
                    scan_count(&reference, lo, hi),
                    "round {round}"
                );
            }
            // Insert a batch of new values.
            1 => {
                for _ in 0..5 {
                    let v = rng.gen_range(1..=(2 * n as i64));
                    column.insert(v);
                    reference.push(v);
                }
            }
            // Delete a few existing values.
            _ => {
                for _ in 0..3 {
                    if reference.is_empty() {
                        break;
                    }
                    let idx = rng.gen_range(0..reference.len());
                    let v = reference.swap_remove(idx);
                    column.delete(v);
                }
            }
        }
        assert!(column.validate(), "invariants broken at round {round}");
    }
    // Flush everything and compare the full contents.
    column.merge_all();
    assert_eq!(column.count(i64::MIN, i64::MAX), reference.len() as u64);
    let range = column.select(i64::MIN, i64::MAX);
    let mut got = column.view(range).to_vec();
    got.sort_unstable();
    reference.sort_unstable();
    assert_eq!(got, reference);
}

#[test]
fn base_column_is_never_modified_by_cracking() {
    let values = dataset(5_000, 3);
    let base = Column::from_values("a", values.clone());
    let concurrent = ConcurrentCrackerColumn::from_column(&base, false);
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..50 {
        let lo = rng.gen_range(1..=4_000);
        concurrent.count(lo, lo + 500);
        concurrent.random_crack(&mut rng);
    }
    // The cracker has reorganized heavily…
    assert!(concurrent.piece_count() > 20);
    // …but the base column still holds the original data, in original order.
    assert_eq!(base.values(), &values[..]);
}

#[test]
fn concurrent_readers_writers_and_tuners_agree_with_a_scan() {
    let n = 50_000;
    let values = dataset(n, 5);
    let expected: Vec<(i64, i64, u64)> = (0..24)
        .map(|i| {
            let lo = 1 + (i * 2003) % (n as i64 - 1000);
            let hi = lo + 997;
            (lo, hi, scan_count(&values, lo, hi))
        })
        .collect();
    let column = Arc::new(ConcurrentCrackerColumn::from_values(values));
    let mut handles = Vec::new();
    // Query threads.
    for t in 0..3u64 {
        let column = Arc::clone(&column);
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..10 {
                for &(lo, hi, want) in &expected {
                    assert_eq!(column.count(lo, hi), want, "thread {t} round {round}");
                    let materialized = column.materialize(lo, hi);
                    assert_eq!(materialized.len() as u64, want);
                    assert!(materialized.iter().all(|&v| v >= lo && v < hi));
                }
            }
        }));
    }
    // A dedicated idle-time tuner thread hammering refinements in parallel.
    let effective = {
        let column = Arc::clone(&column);
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(99);
            let mut effective = 0u64;
            for _ in 0..500 {
                if column.random_crack(&mut rng) {
                    effective += 1;
                }
            }
            effective
        })
    };
    for h in handles {
        h.join().expect("worker panicked");
    }
    let effective = effective.join().expect("tuner panicked");
    assert!(column.validate());
    let stats = column.latch_stats();
    // Only actions that actually introduced a piece count as refinements.
    assert_eq!(stats.refinements, effective);
    assert!(effective > 0 && effective <= 500);
    assert!(stats.shared_selects > 0);
}

#[test]
fn updates_interleaved_with_idle_style_merging() {
    // Proactive merging during idle time (merge_range on cold ranges) must
    // not change query answers.
    let n = 8_000;
    let mut reference = dataset(n, 6);
    let mut column = UpdatableCrackerColumn::from_values(reference.clone());
    let mut rng = StdRng::seed_from_u64(7);
    for v in 0..200 {
        let value = rng.gen_range(1..=n as i64);
        column.insert(value);
        reference.push(value);
        if v % 10 == 0 {
            // Idle time: merge an arbitrary slice of the pending updates.
            let lo = rng.gen_range(1..=n as i64 / 2);
            column.merge_range(lo, lo + n as i64 / 4);
        }
        if v % 7 == 0 {
            let lo = rng.gen_range(1..=(n as i64 - 300));
            assert_eq!(
                column.count(lo, lo + 250),
                scan_count(&reference, lo, lo + 250)
            );
        }
    }
    column.merge_all();
    assert_eq!(column.count(0, i64::MAX), reference.len() as u64);
    assert!(column.validate());
}

/// The tentpole stress test of the shared-reference query path: several
/// query threads hammer a shared engine through `&Database` while the
/// background tuner refines concurrently through the per-column latches.
/// Every answer must equal the sequential scan count, and the cracker
/// invariants must hold afterwards. Run under `--release` in CI so the
/// interleavings are actually exercised.
#[test]
fn shared_engine_stress_with_background_tuner() {
    use holistic_core::{
        BackgroundConfig, BackgroundTuner, Database, HolisticConfig, IndexingStrategy, Query,
    };
    use std::time::Duration;

    let n = 40_000;
    let columns = 3usize;
    let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
    let data: Vec<Vec<i64>> = (0..columns).map(|i| dataset(n, 40 + i as u64)).collect();
    let table = db
        .create_table(
            "r",
            data.iter()
                .enumerate()
                .map(|(i, values)| {
                    let name: &str = ["a", "b", "c"][i];
                    (name, values.clone())
                })
                .collect(),
        )
        .expect("create table");
    let cols = db.column_ids(table).expect("column ids");

    // Expected answers per column, precomputed sequentially.
    let mut expected: Vec<Vec<(i64, i64, u64)>> = Vec::new();
    for (ci, values) in data.iter().enumerate() {
        expected.push(
            (0..16)
                .map(|i| {
                    let lo = 1 + ((i * 2311 + ci * 977) as i64) % (n as i64 - 800);
                    let hi = lo + 777;
                    (lo, hi, scan_count(values, lo, hi))
                })
                .collect(),
        );
    }

    let db = db.into_shared();
    // Zero idle threshold: the tuner refines the whole time, racing the
    // query threads on every column.
    let tuner = BackgroundTuner::spawn(
        Arc::clone(&db),
        BackgroundConfig {
            idle_threshold: Duration::ZERO,
            batch_actions: 32,
            poll_interval: Duration::from_micros(100),
            seed_prefix_sums: true,
            snapshot_on_idle: false,
            scrub_pieces: 64,
        },
    );

    let mut handles = Vec::new();
    for t in 0..4usize {
        let db = Arc::clone(&db);
        let cols = cols.clone();
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..8 {
                // Each thread favors one column but also crosses over, so
                // both same-column and cross-column interleavings happen.
                for ci in [t % 3, (t + round) % 3] {
                    for &(lo, hi, want) in &expected[ci] {
                        let r = db
                            .read()
                            .execute(&Query::range(cols[ci], lo, hi))
                            .expect("query");
                        assert_eq!(r.count, want, "thread {t} round {round} col {ci}");
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("query thread panicked");
    }
    let tuned = tuner.stop();
    let guard = db.read();
    assert!(guard.validate(), "cracker invariants violated under stress");
    assert!(tuned > 0, "tuner should have refined during the stress run");
    // Sequential re-check after the dust settles.
    for (ci, per_col) in expected.iter().enumerate() {
        for &(lo, hi, want) in per_col {
            assert_eq!(
                guard
                    .execute(&Query::range(cols[ci], lo, hi))
                    .unwrap()
                    .count,
                want
            );
        }
    }
}
