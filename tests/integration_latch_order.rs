//! Negative test for the latch hierarchy: the whole engine surface —
//! queries, batches, updates, idle refinement, full-index builds,
//! persistence, recovery, structural DDL and the background tuner — runs
//! with lock-order enforcement switched on and never trips it.
//!
//! Enforcement panics on any acquisition that violates the `LockLevel`
//! order documented in `holistic-sync` (and ARCHITECTURE.md), so a clean
//! run of this test is machine-checked evidence that the hierarchy is
//! respected on every one of these paths, not just documented.

use std::path::PathBuf;
use std::sync::Arc;

use holistic_core::{
    BackgroundConfig, BackgroundTuner, Database, FaultInjector, HolisticConfig, IdleBudget,
    IndexingStrategy, Query,
};

const ROWS: i64 = 20_000;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "holistic-integration-latch-order-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dataset(seed: i64) -> Vec<i64> {
    (0..ROWS)
        .map(|i| (i.wrapping_mul(7919).wrapping_add(seed * 131)).rem_euclid(ROWS))
        .collect()
}

#[test]
fn engine_surface_runs_clean_under_latch_order_enforcement() {
    holistic_sync::set_enforcement(true);

    // `for_testing()` sets `paranoia`, so `Database::new` would switch
    // enforcement on anyway (the production wiring this test also covers).
    let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
    let table = db
        .create_table("t", vec![("a", dataset(1)), ("b", dataset(2))])
        .unwrap();
    let a = db.column_id(table, "a").unwrap();
    let b = db.column_id(table, "b").unwrap();
    // Single-value updates are only supported on single-column tables.
    let updates_table = db.create_table("u", vec![("c", dataset(3))]).unwrap();
    let c = db.column_id(updates_table, "c").unwrap();

    // Persistence attached: from here on every mutation layers the
    // Persistence latch under the Column latches it WAL-logs for.
    let dir = tmpdir("surface");
    db.set_persistence(&dir, FaultInjector::new()).unwrap();

    // Single queries and batches crack both columns and feed statistics
    // (CrackerMap -> Column -> StatsMap/Histogram/Summary -> Metrics).
    for i in 0..48 {
        let lo = (i * 389) % ROWS;
        db.execute(&Query::range(a, lo, lo + 200)).unwrap();
        db.execute(&Query::range(b, lo, lo + 500)).unwrap();
    }
    let batch: Vec<Query> = (0..16)
        .map(|i| Query::range(if i % 2 == 0 { a } else { b }, i * 700, i * 700 + 300))
        .collect();
    db.execute_batch(&batch).unwrap();

    // Updates ripple through a cracked column under the WAL.
    db.execute(&Query::range(c, 100, 4_000)).unwrap();
    for v in 0..32 {
        db.insert(c, ROWS + v).unwrap();
    }
    for v in 0..16 {
        db.delete(c, ROWS + v).unwrap();
    }

    // Idle refinement, explicit warming, prefix-sum seeding, sorting and
    // full-index lifecycle exercise the tuner-side lock paths.
    db.run_idle(IdleBudget::Actions(64));
    db.warm_column(a, 8).unwrap();
    db.seed_prefix_sums();
    db.sort_column(b).unwrap();
    db.build_full_index(b).unwrap();
    db.execute(&Query::range(b, 100, 900)).unwrap();
    db.drop_full_index(b).unwrap();

    // Checkpointing holds Persistence while walking every Column.
    db.snapshot().unwrap();
    db.execute(&Query::range(a, 0, 50)).unwrap();
    db.charge_pending_penalty(std::time::Duration::from_micros(10));
    db.snapshot_if_dirty().unwrap();
    assert!(db.validate());

    // Concurrent phase: the background tuner races query threads on the
    // shared engine, all under enforcement.
    let shared = db.into_shared();
    let tuner = BackgroundTuner::spawn(Arc::clone(&shared), BackgroundConfig::default());
    let workers: Vec<_> = (0..2)
        .map(|w| {
            let db = Arc::clone(&shared);
            std::thread::spawn(move || {
                for i in 0..64 {
                    let lo = ((w * 37 + i) * 211) % ROWS;
                    db.read().execute(&Query::range(a, lo, lo + 400)).unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    tuner.stop();

    // Structural teardown and recovery, still under enforcement.
    let lock = Arc::try_unwrap(shared).expect("all clones dropped");
    let mut db = lock.into_inner();
    assert!(db.drop_table(table).unwrap());
    let (recovered, _outcome) = Database::recover(
        HolisticConfig::for_testing(),
        IndexingStrategy::Holistic,
        &dir,
        FaultInjector::new(),
    )
    .unwrap();
    assert!(recovered.validate());

    // Nothing may leak out of any of the paths above.
    assert!(holistic_sync::held_locks().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same surface with `shard_extent` set, so every path runs through
/// the sharded layout: the `Shard`-level shard-list latch slots between
/// `CrackerMap` and the per-shard `Column` latches, fan-outs visit shards
/// one at a time, and insert spill appends shards — all under enforcement.
#[test]
fn sharded_engine_surface_runs_clean_under_latch_order_enforcement() {
    holistic_sync::set_enforcement(true);

    let config = HolisticConfig::for_testing().with_shard_extent(ROWS as usize / 8);
    let mut db = Database::new(config.clone(), IndexingStrategy::Holistic);
    let table = db.create_table("t", vec![("a", dataset(4))]).unwrap();
    let a = db.column_id(table, "a").unwrap();

    let dir = tmpdir("sharded-surface");
    db.set_persistence(&dir, FaultInjector::new()).unwrap();

    // Queries and a batch fan out across shards; the cache classification
    // composes per-shard aggregates under the Shard -> Column order.
    for i in 0..48 {
        let lo = (i * 389) % ROWS;
        db.execute(&Query::range(a, lo, lo + 200)).unwrap();
    }
    let batch: Vec<Query> = (0..16)
        .map(|i| Query::range(a, i * 700, i * 700 + 300))
        .collect();
    db.execute_batch(&batch).unwrap();

    // Inserts past the last shard's extent spill fresh shards (Shard-level
    // write latch) while the WAL logs under Persistence.
    for v in 0..32 {
        db.insert(a, ROWS + v).unwrap();
    }
    for v in 0..8 {
        db.delete(a, ROWS + v).unwrap();
    }

    // Idle refinement and prefix seeding walk the per-shard latches.
    db.run_idle(IdleBudget::Actions(64));
    db.seed_prefix_sums();
    db.snapshot().unwrap();
    assert!(db.validate());

    // Concurrent phase: readers fan out across shards while the tuner
    // refines individual shards, all under enforcement.
    let shared = db.into_shared();
    let tuner = BackgroundTuner::spawn(Arc::clone(&shared), BackgroundConfig::default());
    let workers: Vec<_> = (0..2)
        .map(|w| {
            let db = Arc::clone(&shared);
            std::thread::spawn(move || {
                for i in 0..64 {
                    let lo = ((w * 37 + i) * 211) % ROWS;
                    db.read().execute(&Query::range(a, lo, lo + 400)).unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    tuner.stop();

    // Recovery rebuilds the sharded layout from the per-shard sections.
    let lock = Arc::try_unwrap(shared).expect("all clones dropped");
    drop(lock.into_inner());
    let (recovered, _outcome) = Database::recover(
        config,
        IndexingStrategy::Holistic,
        &dir,
        FaultInjector::new(),
    )
    .unwrap();
    assert!(recovered.validate());

    assert!(holistic_sync::held_locks().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
