//! Integration tests spanning the whole stack: the same workload replayed
//! under every indexing strategy must return identical answers, while the
//! auxiliary structures each strategy builds differ in the expected ways.

use holistic_core::{AccessPath, Database, HolisticConfig, IndexingStrategy, Query};
use holistic_offline::WorkloadSummary;
use holistic_workload::{QueryGenerator, RoundRobinColumns, UniformRangeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROWS: usize = 20_000;
const COLUMNS: usize = 3;

fn dataset(seed: u64) -> Vec<i64> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ROWS).map(|_| rng.gen_range(1..=ROWS as i64)).collect()
}

fn build_db(strategy: IndexingStrategy) -> (Database, Vec<holistic_core::ColumnId>) {
    let mut db = Database::new(HolisticConfig::for_testing(), strategy);
    let data: Vec<(&str, Vec<i64>)> = vec![("a", dataset(1)), ("b", dataset(2)), ("c", dataset(3))];
    let t = db.create_table("r", data).unwrap();
    let cols = db.column_ids(t).unwrap();
    (db, cols)
}

fn workload(queries: usize) -> Vec<holistic_workload::RangeQuery> {
    let inner = UniformRangeGenerator::new(0, 1, ROWS as i64 + 1, 0.02);
    let mut generator = RoundRobinColumns::new(inner, COLUMNS);
    let mut rng = StdRng::seed_from_u64(99);
    generator.generate(queries, &mut rng)
}

#[test]
fn all_strategies_agree_on_query_results() {
    let queries = workload(120);
    // Reference answers from the scan-only engine.
    let (reference_db, ref_cols) = build_db(IndexingStrategy::ScanOnly);
    let reference: Vec<(u64, i128)> = queries
        .iter()
        .map(|q| {
            let r = reference_db
                .execute(&Query::range(ref_cols[q.column], q.lo, q.hi))
                .unwrap();
            (r.count, r.sum)
        })
        .collect();

    for strategy in [
        IndexingStrategy::Offline,
        IndexingStrategy::Online,
        IndexingStrategy::Adaptive,
        IndexingStrategy::Holistic,
    ] {
        let (mut db, cols) = build_db(strategy);
        if strategy == IndexingStrategy::Offline {
            // Offline gets its full indexes up front, as it would in practice.
            let mut summary = WorkloadSummary::new();
            for &c in &cols {
                summary.declare(c, 100, 0.02);
            }
            let report = db.prepare_offline(&summary, None);
            assert_eq!(report.built.len(), COLUMNS);
        }
        for (q, expected) in queries.iter().zip(reference.iter()) {
            let r = db
                .execute(&Query::range(cols[q.column], q.lo, q.hi))
                .unwrap();
            assert_eq!((r.count, r.sum), *expected, "{strategy} disagrees on {q:?}");
        }
    }
}

#[test]
fn strategies_build_the_expected_auxiliary_structures() {
    let queries = workload(60);

    let (scan_db, scan_cols) = build_db(IndexingStrategy::ScanOnly);
    let (adaptive_db, adaptive_cols) = build_db(IndexingStrategy::Adaptive);
    let (mut offline_db, offline_cols) = build_db(IndexingStrategy::Offline);
    let mut summary = WorkloadSummary::new();
    for &c in &offline_cols {
        summary.declare(c, 100, 0.02);
    }
    offline_db.prepare_offline(&summary, None);

    for q in &queries {
        scan_db
            .execute(&Query::range(scan_cols[q.column], q.lo, q.hi))
            .unwrap();
        adaptive_db
            .execute(&Query::range(adaptive_cols[q.column], q.lo, q.hi))
            .unwrap();
        offline_db
            .execute(&Query::range(offline_cols[q.column], q.lo, q.hi))
            .unwrap();
    }

    // Scan: nothing gets built.
    for &c in &scan_cols {
        assert_eq!(scan_db.piece_count(c), 0);
        assert!(!scan_db.has_full_index(c));
    }
    let (s, i, cr) = scan_db.metrics().path_breakdown();
    assert_eq!((s, i, cr), (60, 0, 0));

    // Adaptive: cracker columns exist and keep refining with every query.
    for &c in &adaptive_cols {
        assert!(adaptive_db.piece_count(c) >= 2);
        assert!(!adaptive_db.has_full_index(c));
    }
    let (s, i, cr) = adaptive_db.metrics().path_breakdown();
    assert_eq!((s, i, cr), (0, 0, 60));

    // Offline: full indexes answer everything, no cracking happens.
    for &c in &offline_cols {
        assert!(offline_db.has_full_index(c));
        assert_eq!(offline_db.piece_count(c), 0);
    }
    let (s, i, cr) = offline_db.metrics().path_breakdown();
    assert_eq!((s, i, cr), (0, 60, 0));
}

#[test]
fn adaptive_queries_get_faster_as_the_column_is_cracked() {
    let (db, cols) = build_db(IndexingStrategy::Adaptive);
    // Hammer a single column with many queries; compare early vs late work.
    let inner = UniformRangeGenerator::new(0, 1, ROWS as i64 + 1, 0.02);
    let mut generator = inner;
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..200 {
        let q = generator.next_query(&mut rng);
        db.execute(&Query::range(cols[0], q.lo, q.hi)).unwrap();
    }
    // Piece counts must have grown substantially, and the average piece must
    // have shrunk by at least an order of magnitude.
    assert!(db.piece_count(cols[0]) > 50);
    let activity = db.stats().column(cols[0]).unwrap();
    assert!(activity.avg_piece_len < ROWS as f64 / 10.0);
}

#[test]
fn offline_with_zero_budget_degenerates_to_scanning() {
    let (mut db, cols) = build_db(IndexingStrategy::Offline);
    let mut summary = WorkloadSummary::new();
    for &c in &cols {
        summary.declare(c, 100, 0.02);
    }
    let report = db.prepare_offline(&summary, Some(std::time::Duration::ZERO));
    assert!(report.built.is_empty());
    let r = db.execute(&Query::range(cols[0], 10, 500)).unwrap();
    assert_eq!(r.path, AccessPath::Scan);
}

#[test]
fn results_are_identical_with_and_without_rowid_payloads() {
    let queries = workload(40);
    let mut with_rowids = Database::new(
        HolisticConfig::for_testing().with_rowids(true),
        IndexingStrategy::Holistic,
    );
    let mut without_rowids = Database::new(
        HolisticConfig::for_testing().with_rowids(false),
        IndexingStrategy::Holistic,
    );
    for db in [&mut with_rowids, &mut without_rowids] {
        db.create_table(
            "r",
            vec![("a", dataset(1)), ("b", dataset(2)), ("c", dataset(3))],
        )
        .unwrap();
    }
    let cols_a = with_rowids.column_ids(holistic_core::TableId(0)).unwrap();
    let cols_b = without_rowids
        .column_ids(holistic_core::TableId(0))
        .unwrap();
    for q in &queries {
        let a = with_rowids
            .execute(&Query::range(cols_a[q.column], q.lo, q.hi))
            .unwrap();
        let b = without_rowids
            .execute(&Query::range(cols_b[q.column], q.lo, q.hi))
            .unwrap();
        assert_eq!((a.count, a.sum), (b.count, b.sum));
    }
}

#[test]
fn stochastic_policies_do_not_change_query_answers() {
    use holistic_core::CrackPolicy;
    let queries = workload(60);
    let (reference_db, ref_cols) = build_db(IndexingStrategy::ScanOnly);
    let reference: Vec<u64> = queries
        .iter()
        .map(|q| {
            reference_db
                .execute(&Query::range(ref_cols[q.column], q.lo, q.hi))
                .unwrap()
                .count
        })
        .collect();
    for policy in [CrackPolicy::ddc(), CrackPolicy::ddr(), CrackPolicy::Mdd1r] {
        let mut db = Database::new(
            HolisticConfig::for_testing().with_crack_policy(policy),
            IndexingStrategy::Holistic,
        );
        let t = db
            .create_table(
                "r",
                vec![("a", dataset(1)), ("b", dataset(2)), ("c", dataset(3))],
            )
            .unwrap();
        let cols = db.column_ids(t).unwrap();
        for (q, want) in queries.iter().zip(reference.iter()) {
            let got = db
                .execute(&Query::range(cols[q.column], q.lo, q.hi))
                .unwrap()
                .count;
            assert_eq!(got, *want, "policy {policy:?} wrong on {q:?}");
        }
    }
}
