//! Crash-safe persistence end to end: snapshot/recover round trips, WAL
//! replay of post-snapshot mutations, recovered sorted pieces answering
//! zero-read aggregates, update streams rippling into recovered state, and
//! the degradation ladder when a snapshot generation is corrupted.

use std::path::PathBuf;

use holistic_core::{Database, FaultInjector, HolisticConfig, IndexingStrategy, Query};

const ROWS: usize = 20_000;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "holistic-integration-persistence-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dataset(seed: u64) -> Vec<i64> {
    // Deterministic pseudo-random values without pulling in a generator.
    (0..ROWS as i64)
        .map(|i| (i.wrapping_mul(7919).wrapping_add(seed as i64 * 131)) % (ROWS as i64))
        .collect()
}

fn reference_count(values: &[i64], lo: i64, hi: i64) -> u64 {
    values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
}

fn reference_sum(values: &[i64], lo: i64, hi: i64) -> i128 {
    values
        .iter()
        .filter(|&&v| v >= lo && v < hi)
        .map(|&v| i128::from(v))
        .sum()
}

fn recover(dir: &PathBuf) -> (Database, holistic_core::RecoveryOutcome) {
    Database::recover(
        HolisticConfig::for_testing(),
        IndexingStrategy::Holistic,
        dir,
        FaultInjector::new(),
    )
    .expect("recovery")
}

#[test]
fn snapshot_and_recover_round_trip_preserves_data_and_learned_state() {
    let dir = tmpdir("roundtrip");
    let values = dataset(1);
    let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
    db.set_persistence(&dir, FaultInjector::new()).unwrap();
    let t = db.create_table("r", vec![("a", values.clone())]).unwrap();
    let col = db.column_id(t, "a").unwrap();
    // Crack the column with a spread of queries so there is learned state
    // (piece boundaries, cached sums) worth persisting.
    for i in 0..40i64 {
        let lo = 1 + (i * 431) % (ROWS as i64 - 600);
        db.execute(&Query::range(col, lo, lo + 500)).unwrap();
    }
    let pieces_before = db.cracker_pieces(col);
    assert!(pieces_before.len() > 1, "queries should have cracked");
    let generation = db.snapshot().unwrap();
    assert_eq!(generation, 1);
    assert!(!db.persistence_dirty(), "snapshot cleared the dirty flag");
    drop(db); // crash: no clean shutdown exists, dropping is it

    let (recovered, outcome) = recover(&dir);
    assert_eq!(outcome.snapshot_generation, Some(1));
    assert_eq!(outcome.snapshots_skipped, 0);
    assert_eq!(outcome.wal_records_replayed, 0);
    assert!(!outcome.learned_state_dropped);
    assert!(outcome.cold_columns.is_empty());
    assert!(!outcome.wal_only_rebuild);
    // The learned state came back exactly: same piece table, and the
    // recovered pieces validate (paranoia is on in the test profile, so
    // every query below re-validates too).
    assert_eq!(recovered.cracker_pieces(col), pieces_before);
    assert!(recovered.validate());
    for i in 0..40i64 {
        let lo = 1 + (i * 431) % (ROWS as i64 - 600);
        let r = recovered.execute(&Query::range(col, lo, lo + 500)).unwrap();
        assert_eq!(r.count, reference_count(&values, lo, lo + 500));
        assert_eq!(r.sum, reference_sum(&values, lo, lo + 500));
    }
}

#[test]
fn recovered_sorted_pieces_answer_zero_read_aggregates() {
    let dir = tmpdir("sorted-zero-read");
    let values = dataset(2);
    let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
    db.set_persistence(&dir, FaultInjector::new()).unwrap();
    let t = db.create_table("r", vec![("a", values.clone())]).unwrap();
    let col = db.column_id(t, "a").unwrap();
    // Idle-time preparation: fully sort the column, seeding its prefix-sum
    // array, then record the pre-crash answers and cache behaviour.
    db.sort_column(col).unwrap();
    let queries: Vec<(i64, i64)> = (0..30i64)
        .map(|i| {
            let lo = (i * 617) % (ROWS as i64 - 900);
            (lo, lo + 700)
        })
        .collect();
    let before = db.metrics().aggregate_cache();
    let mut expected = Vec::new();
    for &(lo, hi) in &queries {
        let r = db.execute(&Query::range(col, lo, hi)).unwrap();
        assert_eq!(r.count, reference_count(&values, lo, hi));
        expected.push((r.count, r.sum));
    }
    let after = db.metrics().aggregate_cache();
    assert_eq!(
        after.scanned_values, before.scanned_values,
        "sorted + prefix-seeded column must answer aggregates without reading data"
    );
    assert!(after.zero_read() >= before.zero_read() + queries.len() as u64);
    db.snapshot().unwrap();
    drop(db);

    let (recovered, outcome) = recover(&dir);
    assert!(outcome.cold_columns.is_empty());
    assert!(!outcome.learned_state_dropped);
    // The sorted flag and the prefix arrays themselves survived: every
    // piece of the recovered column is sorted and covered by a prefix.
    let pieces = recovered.cracker_pieces(col);
    assert!(!pieces.is_empty());
    assert!(
        pieces.iter().all(|p| p.sorted && p.prefix.is_some()),
        "recovered pieces lost sorted flags or prefix arrays"
    );
    // And the recovered prefix arrays answer the same aggregates zero-read:
    // identical counts and sums, no values scanned, every query a
    // zero-read cache hit — from the very first post-restart probe.
    for (&(lo, hi), &(count, sum)) in queries.iter().zip(&expected) {
        let r = recovered.execute(&Query::range(col, lo, hi)).unwrap();
        assert_eq!(r.count, count);
        assert_eq!(r.sum, sum);
    }
    let cache = recovered.metrics().aggregate_cache();
    assert_eq!(
        cache.scanned_values, 0,
        "recovery lost the zero-read property"
    );
    assert!(cache.zero_read() >= queries.len() as u64);
}

#[test]
fn update_streams_ripple_correctly_into_recovered_sorted_pieces() {
    let dir = tmpdir("updates-after-recovery");
    let mut values = dataset(3);
    let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
    db.set_persistence(&dir, FaultInjector::new()).unwrap();
    let t = db.create_table("r", vec![("a", values.clone())]).unwrap();
    let col = db.column_id(t, "a").unwrap();
    db.sort_column(col).unwrap();
    db.snapshot().unwrap();
    drop(db);

    let (mut recovered, outcome) = recover(&dir);
    assert_eq!(outcome.snapshot_generation, Some(1));
    // A mixed insert/delete stream against the *recovered* sorted piece:
    // ripple updates must keep answers exact (the touched pieces drop their
    // sorted flag, which is correctness-neutral — just slower).
    for i in 0..60i64 {
        if i % 3 == 2 {
            let victim = values[(i as usize * 37) % values.len()];
            assert!(recovered.delete(col, victim).unwrap());
            let pos = values.iter().position(|&v| v == victim).unwrap();
            values.remove(pos);
        } else {
            let v = -100 - i; // outside the base domain, lands at the front
            recovered.insert(col, v).unwrap();
            values.push(v);
        }
    }
    assert!(recovered.validate());
    for lo in [-200i64, -50, 0, 500, ROWS as i64 / 2] {
        let hi = lo + 800;
        let r = recovered.execute(&Query::range(col, lo, hi)).unwrap();
        assert_eq!(r.count, reference_count(&values, lo, hi));
        assert_eq!(r.sum, reference_sum(&values, lo, hi));
    }

    // Second crash after the update stream: the updates were WAL-logged
    // (no snapshot since), so they must replay on the next recovery.
    drop(recovered);
    let (again, outcome2) = recover(&dir);
    assert_eq!(outcome2.snapshot_generation, Some(1));
    assert_eq!(outcome2.wal_records_replayed, 60);
    for lo in [-200i64, -50, 0, 500, ROWS as i64 / 2] {
        let hi = lo + 800;
        let r = again.execute(&Query::range(col, lo, hi)).unwrap();
        assert_eq!(r.count, reference_count(&values, lo, hi));
        assert_eq!(r.sum, reference_sum(&values, lo, hi));
    }
}

#[test]
fn wal_replay_restores_post_snapshot_catalog_changes() {
    let dir = tmpdir("wal-replay");
    let values = dataset(4);
    let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
    db.set_persistence(&dir, FaultInjector::new()).unwrap();
    let t1 = db
        .create_table("first", vec![("a", values.clone())])
        .unwrap();
    let c1 = db.column_id(t1, "a").unwrap();
    db.snapshot().unwrap();
    // Everything below happens after the snapshot and lives only in the WAL.
    let extra: Vec<i64> = (0..500).map(|i| i * 3).collect();
    let t2 = db
        .create_table("second", vec![("b", extra.clone())])
        .unwrap();
    let c2 = db.column_id(t2, "b").unwrap();
    db.build_full_index(c1).unwrap();
    drop(db);

    let (recovered, outcome) = recover(&dir);
    assert_eq!(outcome.snapshot_generation, Some(1));
    assert!(outcome.wal_records_replayed >= 2, "create + index build");
    let r1 = recovered.execute(&Query::range(c1, 100, 900)).unwrap();
    assert_eq!(r1.count, reference_count(&values, 100, 900));
    assert_eq!(
        r1.path,
        holistic_core::AccessPath::FullIndex,
        "the WAL-logged full-index build must be rematerialized"
    );
    let r2 = recovered.execute(&Query::range(c2, 0, 600)).unwrap();
    assert_eq!(r2.count, reference_count(&extra, 0, 600));
}

#[test]
fn corrupt_newest_snapshot_degrades_to_previous_generation() {
    let dir = tmpdir("degrade-generation");
    let mut values = dataset(5);
    let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
    db.set_persistence(&dir, FaultInjector::new()).unwrap();
    let t = db.create_table("r", vec![("a", values.clone())]).unwrap();
    let col = db.column_id(t, "a").unwrap();
    db.snapshot().unwrap(); // generation 1
    for i in 0..20i64 {
        db.insert(col, 100_000 + i).unwrap();
        values.push(100_000 + i);
    }
    db.snapshot().unwrap(); // generation 2
    for i in 20..35i64 {
        db.insert(col, 100_000 + i).unwrap();
        values.push(100_000 + i);
    }
    drop(db);
    // Corrupt the newest snapshot's header: the whole file is rejected.
    holistic_core::flip_byte(&dir.join("snapshot.2"), 3).unwrap();

    let (recovered, outcome) = recover(&dir);
    assert_eq!(outcome.snapshots_skipped, 1);
    assert_eq!(outcome.snapshot_generation, Some(1));
    // The WAL kept every record past generation 1's watermark precisely so
    // this fallback replays the full history: nothing is lost.
    assert!(outcome.wal_records_replayed >= 35);
    let r = recovered
        .execute(&Query::range(col, 100_000, 100_100))
        .unwrap();
    assert_eq!(r.count, 35);
    assert_eq!(r.sum, reference_sum(&values, 100_000, 100_100));
    // The corrupt file was removed so later recoveries skip the dead weight.
    assert!(!dir.join("snapshot.2").exists());
}

/// Regression (ROADMAP 5d): a cracker *born after* the last snapshot is
/// invisible to that snapshot's LEARNED section, and queries are not
/// WAL-logged — so recovery used to drop the column's learned state
/// entirely (piece count 0, post-snapshot updates replayed into the base
/// only) without reporting anything. The `CrackerBorn` WAL record closes
/// the gap: replay re-instantiates the cracker at its birth position, the
/// logged updates ripple into it exactly as they did forward, and the
/// rebirth is reported in `RecoveryOutcome::crackers_reborn`.
#[test]
fn crackers_born_after_snapshot_survive_recovery_update_complete() {
    let dir = tmpdir("cracker-born-after-snapshot");
    let hot_values = dataset(6);
    let mut cold_values = dataset(7);
    let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
    db.set_persistence(&dir, FaultInjector::new()).unwrap();
    let th = db
        .create_table("hot", vec![("a", hot_values.clone())])
        .unwrap();
    let hot = db.column_id(th, "a").unwrap();
    let tc = db
        .create_table("cold", vec![("a", cold_values.clone())])
        .unwrap();
    let cold = db.column_id(tc, "a").unwrap();
    // Crack only the hot column, then snapshot: LEARNED covers hot alone.
    for i in 0..30i64 {
        let lo = 1 + (i * 431) % (ROWS as i64 - 600);
        db.execute(&Query::range(hot, lo, lo + 500)).unwrap();
    }
    db.snapshot().unwrap();
    let hot_pieces = db.cracker_pieces(hot);

    // The cold column's cracker is born *after* the snapshot — queries
    // crack it, then a heavy update stream ripples into it.
    for i in 0..30i64 {
        let lo = 1 + (i * 617) % (ROWS as i64 - 900);
        db.execute(&Query::range(cold, lo, lo + 700)).unwrap();
    }
    assert!(db.piece_count(cold) > 1, "cold column should have cracked");
    for i in 0..100i64 {
        if i % 4 == 3 {
            let victim = cold_values[(i as usize * 53) % cold_values.len()];
            assert!(db.delete(cold, victim).unwrap());
            let pos = cold_values.iter().position(|&v| v == victim).unwrap();
            cold_values.remove(pos);
        } else {
            db.insert(cold, -1_000 - i).unwrap();
            cold_values.push(-1_000 - i);
        }
    }
    drop(db); // crash

    let (recovered, outcome) = recover(&dir);
    assert_eq!(outcome.snapshot_generation, Some(1));
    assert_eq!(
        outcome.crackers_reborn,
        vec![cold],
        "the post-snapshot birth must be replayed and reported"
    );
    // The regression: before the fix the cold cracker was silently gone
    // (piece count 0) and only the hot column came back warm.
    assert!(
        recovered.piece_count(cold) >= 1,
        "cold column's cracker must be re-instantiated from its WAL birth"
    );
    assert_eq!(
        recovered.cracker_pieces(hot),
        hot_pieces,
        "snapshot-covered columns still recover their full piece tables"
    );
    assert!(recovered.validate());
    // The reborn cracker is update-complete: the 100 replayed updates
    // rippled into it, so answers over the updated domain are exact.
    for lo in [-1_200i64, -1_050, 0, 500, ROWS as i64 / 2] {
        let hi = lo + 800;
        let r = recovered.execute(&Query::range(cold, lo, hi)).unwrap();
        assert_eq!(r.count, reference_count(&cold_values, lo, hi));
        assert_eq!(r.sum, reference_sum(&cold_values, lo, hi));
    }
}

/// Group commit: a whole update batch is WAL-logged with one write and one
/// fsync (instead of one fsync per operation), and replays exactly.
#[test]
fn update_batch_group_commits_with_a_single_fsync() {
    use holistic_core::UpdateOp;
    let dir = tmpdir("group-commit");
    let mut values = dataset(8);
    let inj = FaultInjector::new();
    let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
    db.set_persistence(&dir, std::sync::Arc::clone(&inj))
        .unwrap();
    let t = db.create_table("r", vec![("a", values.clone())]).unwrap();
    let col = db.column_id(t, "a").unwrap();

    // Two singleton updates: one write + one fsync each.
    let before_singles = inj.ops_performed();
    db.insert(col, 50_000).unwrap();
    db.insert(col, 50_001).unwrap();
    values.push(50_000);
    values.push(50_001);
    assert_eq!(inj.ops_performed() - before_singles, 4);

    // One batch of eight: still one write + one fsync.
    let batch: Vec<UpdateOp> = (0..8i64)
        .map(|i| {
            if i % 2 == 0 {
                UpdateOp::Insert {
                    column: col,
                    value: 60_000 + i,
                }
            } else {
                UpdateOp::Delete {
                    column: col,
                    value: values[i as usize * 11],
                }
            }
        })
        .collect();
    for op in &batch {
        match *op {
            UpdateOp::Insert { value, .. } => values.push(value),
            UpdateOp::Delete { value, .. } => {
                let pos = values.iter().position(|&v| v == value).unwrap();
                values.remove(pos);
            }
        }
    }
    let before_batch = inj.ops_performed();
    let applied = db.update_batch(&batch).unwrap();
    assert_eq!(
        inj.ops_performed() - before_batch,
        2,
        "a grouped update batch must cost exactly one write + one fsync"
    );
    assert_eq!(applied, vec![true; 8]);
    drop(db); // crash

    // Every record of the batch replays individually on recovery.
    let (recovered, outcome) = recover(&dir);
    assert!(outcome.wal_only_rebuild);
    assert_eq!(
        outcome.wal_records_replayed,
        1 + 2 + 8,
        "create table + two singles + the eight batched updates"
    );
    for lo in [0i64, 500, 49_900, 59_900] {
        let hi = lo + 800;
        let r = recovered.execute(&Query::range(col, lo, hi)).unwrap();
        assert_eq!(r.count, reference_count(&values, lo, hi));
        assert_eq!(r.sum, reference_sum(&values, lo, hi));
    }
}

/// A crash inside a group-committed batch append leaves a durable *prefix*
/// of the batch: recovery replays the first `k` operations for some `k`,
/// never a hole and never a reordering.
#[test]
fn killed_update_batch_recovers_an_exact_prefix() {
    use holistic_core::UpdateOp;
    let base: Vec<i64> = (0..200i64).collect();
    let sentinels: Vec<i64> = (0..8i64).map(|i| 10_001 + i).collect();
    // A batch append is one write + one fsync: sweep both kill points.
    for kill in 0..2u64 {
        let dir = tmpdir(&format!("killed-batch-{kill}"));
        let inj = FaultInjector::new();
        let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
        db.set_persistence(&dir, std::sync::Arc::clone(&inj))
            .unwrap();
        let t = db.create_table("r", vec![("a", base.clone())]).unwrap();
        let col = db.column_id(t, "a").unwrap();
        let batch: Vec<UpdateOp> = sentinels
            .iter()
            .map(|&value| UpdateOp::Insert { column: col, value })
            .collect();
        inj.arm(inj.ops_performed() + kill);
        assert!(db.update_batch(&batch).is_err(), "armed batch must crash");
        drop(db);

        let (recovered, _) = recover(&dir);
        assert!(recovered.validate());
        // Present sentinels must form a prefix of the batch, in order.
        let present: Vec<bool> = sentinels
            .iter()
            .map(|&v| {
                recovered
                    .execute(&Query::range(col, v, v + 1))
                    .unwrap()
                    .count
                    == 1
            })
            .collect();
        let durable = present.iter().filter(|&&p| p).count();
        assert!(
            present.iter().take(durable).all(|&p| p) && present.iter().skip(durable).all(|&p| !p),
            "kill at {kill}: durable sentinels are not a prefix: {present:?}"
        );
        // And the base data is untouched either way.
        let r = recovered.execute(&Query::range(col, 0, 200)).unwrap();
        assert_eq!(r.count, 200);
    }
}

#[test]
fn snapshot_generations_are_pruned_to_the_newest_two() {
    let dir = tmpdir("prune-generations");
    let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
    db.set_persistence(&dir, FaultInjector::new()).unwrap();
    let t = db
        .create_table("r", vec![("a", (0..100i64).collect())])
        .unwrap();
    let col = db.column_id(t, "a").unwrap();
    for gen in 1..=4u64 {
        db.insert(col, 1_000 + gen as i64).unwrap();
        assert_eq!(db.snapshot().unwrap(), gen);
    }
    let mut snapshots: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("snapshot."))
        .collect();
    snapshots.sort();
    assert_eq!(snapshots, vec!["snapshot.3", "snapshot.4"]);

    let (recovered, outcome) = recover(&dir);
    assert_eq!(outcome.snapshot_generation, Some(4));
    let r = recovered.execute(&Query::range(col, 1_000, 1_010)).unwrap();
    assert_eq!(r.count, 4);
}

/// Sharded columns round-trip through persistence bit for bit: the LEARNED
/// section stores every shard's piece table separately, and recovery
/// reassembles the same shard layout — identical piece boundaries, cached
/// sums, sorted flags and prefix arrays, whether the state comes from the
/// snapshot alone or from snapshot + WAL-tail replay after a crash.
#[test]
fn sharded_snapshot_and_wal_recover_per_shard_piece_tables_bit_for_bit() {
    let dir = tmpdir("sharded-roundtrip");
    let extent = 4_096; // ~5 shards at 20k rows
    let mut values = dataset(9);
    let config = HolisticConfig::for_testing().with_shard_extent(extent);
    let mut db = Database::new(config.clone(), IndexingStrategy::Holistic);
    db.set_persistence(&dir, FaultInjector::new()).unwrap();
    let t = db.create_table("r", vec![("a", values.clone())]).unwrap();
    let col = db.column_id(t, "a").unwrap();
    // Crack across the whole domain so several shards carry learned state,
    // and sort part of it so prefix arrays and sorted flags exist too.
    for i in 0..40i64 {
        let lo = 1 + (i * 431) % (ROWS as i64 - 600);
        db.execute(&Query::range(col, lo, lo + 500)).unwrap();
    }
    db.run_idle(holistic_core::IdleBudget::Actions(64));
    let shards = ROWS.div_ceil(extent);
    let pieces_at_snapshot = db.cracker_pieces(col);
    assert!(
        pieces_at_snapshot.len() > shards,
        "warmup must crack beyond one piece per shard"
    );
    db.snapshot().unwrap();

    // Crash 1: recovery from the snapshot alone must be bit-identical.
    drop(db);
    let (mut db, outcome) = Database::recover(
        config.clone(),
        IndexingStrategy::Holistic,
        &dir,
        FaultInjector::new(),
    )
    .expect("sharded recovery");
    assert!(outcome.cold_columns.is_empty(), "no shard may come up cold");
    assert!(!outcome.learned_state_dropped);
    assert_eq!(
        db.cracker_pieces(col),
        pieces_at_snapshot,
        "per-shard piece tables must survive the snapshot bit for bit"
    );
    assert!(db.validate());

    // WAL tail: post-snapshot updates ripple into the recovered shards
    // (inserts spill into the last shard) and live only in the log.
    for i in 0..80i64 {
        if i % 5 == 4 {
            let victim = values[(i as usize * 29) % values.len()];
            assert!(db.delete(col, victim).unwrap());
            let pos = values.iter().position(|&v| v == victim).unwrap();
            values.remove(pos);
        } else {
            db.insert(col, 200_000 + i).unwrap();
            values.push(200_000 + i);
        }
    }
    let pieces_after_updates = db.cracker_pieces(col);

    // Crash 2: snapshot + WAL replay must rebuild the same sharded state —
    // replay mirrors the forward ripple exactly, shard spills included.
    drop(db);
    let (db, outcome2) = Database::recover(
        config,
        IndexingStrategy::Holistic,
        &dir,
        FaultInjector::new(),
    )
    .expect("sharded recovery with WAL tail");
    assert_eq!(outcome2.wal_records_replayed, 80);
    assert_eq!(
        db.cracker_pieces(col),
        pieces_after_updates,
        "WAL replay must reproduce the sharded piece tables bit for bit"
    );
    assert!(db.validate());
    for lo in [0i64, 500, ROWS as i64 / 2, 199_990] {
        let hi = lo + 800;
        let r = db.execute(&Query::range(col, lo, hi)).unwrap();
        assert_eq!(r.count, reference_count(&values, lo, hi));
        assert_eq!(r.sum, reference_sum(&values, lo, hi));
    }
}
