//! Trace recording/replay and workload-generator integration: sessions are
//! reproducible, serializable, and behave identically when replayed against
//! the engine.

use holistic_core::{Database, HolisticConfig, IdleBudget, IndexingStrategy, Query};
use holistic_workload::{
    ArrivalModel, IdleWindow, QueryGenerator, QueryTrace, RangeQuery, RoundRobinColumns,
    SessionBuilder, UniformRangeGenerator, WorkloadEvent, ZipfRangeGenerator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROWS: usize = 10_000;

fn build_db() -> (Database, Vec<holistic_core::ColumnId>) {
    let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
    let data: Vec<(&str, Vec<i64>)> = vec![
        ("a", (0..ROWS as i64).rev().collect()),
        (
            "b",
            (0..ROWS as i64).map(|i| (i * 31) % ROWS as i64).collect(),
        ),
    ];
    let t = db.create_table("r", data).unwrap();
    let cols = db.column_ids(t).unwrap();
    (db, cols)
}

fn replay(db: &mut Database, cols: &[holistic_core::ColumnId], trace: &QueryTrace) -> Vec<u64> {
    let mut counts = Vec::new();
    for event in trace.events() {
        match event {
            WorkloadEvent::Query(RangeQuery { column, lo, hi }) => {
                let col = cols[*column % cols.len()];
                counts.push(db.execute(&Query::range(col, *lo, *hi)).unwrap().count);
            }
            WorkloadEvent::Idle(IdleWindow::Actions(a)) => {
                db.run_idle(IdleBudget::Actions(*a));
            }
            WorkloadEvent::Idle(IdleWindow::Micros(m)) => {
                db.run_idle(IdleBudget::Duration(std::time::Duration::from_micros(*m)));
            }
        }
    }
    counts
}

#[test]
fn generators_are_deterministic_for_a_fixed_seed() {
    let make = || {
        let inner = UniformRangeGenerator::new(0, 1, ROWS as i64, 0.01);
        let mut generator = RoundRobinColumns::new(inner, 2);
        let mut rng = StdRng::seed_from_u64(123);
        generator.generate(50, &mut rng)
    };
    assert_eq!(make(), make());
    let zipf = |seed| {
        let mut generator = ZipfRangeGenerator::new(0, 1, ROWS as i64, 0.01, 16, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        generator.generate(50, &mut rng)
    };
    assert_eq!(zipf(5), zipf(5));
    assert_ne!(zipf(5), zipf(6));
}

#[test]
fn trace_round_trip_preserves_replay_behaviour() {
    // Build a session with queries and idle windows, serialize it, parse it
    // back, and replay both against identical engines.
    let mut generator = {
        let inner = UniformRangeGenerator::new(0, 1, ROWS as i64, 0.02);
        RoundRobinColumns::new(inner, 2)
    };
    let mut rng = StdRng::seed_from_u64(77);
    let events = SessionBuilder::new(ArrivalModel::PeriodicIdle {
        every: 10,
        actions: 20,
    })
    .with_initial_idle(IdleWindow::Actions(50))
    .build(&mut generator, 80, &mut rng);
    let trace = QueryTrace::from_events(events);

    let text = trace.to_text();
    let parsed = QueryTrace::from_text(&text).expect("valid trace text");
    assert_eq!(parsed, trace);

    let (mut db_original, cols_a) = build_db();
    let (mut db_parsed, cols_b) = build_db();
    let counts_original = replay(&mut db_original, &cols_a, &trace);
    let counts_parsed = replay(&mut db_parsed, &cols_b, &parsed);
    assert_eq!(counts_original, counts_parsed);
    assert_eq!(counts_original.len(), 80);
}

#[test]
fn replaying_the_same_trace_under_different_strategies_gives_identical_answers() {
    let mut generator = UniformRangeGenerator::new(0, 1, ROWS as i64, 0.05);
    let mut rng = StdRng::seed_from_u64(31);
    let mut trace = QueryTrace::new();
    for q in generator.generate(60, &mut rng) {
        trace.push(WorkloadEvent::Query(q));
    }
    let mut reference: Option<Vec<u64>> = None;
    for strategy in [
        IndexingStrategy::ScanOnly,
        IndexingStrategy::Adaptive,
        IndexingStrategy::Holistic,
    ] {
        let mut db = Database::new(HolisticConfig::for_testing(), strategy);
        let t = db
            .create_table(
                "r",
                vec![
                    ("a", (0..ROWS as i64).rev().collect()),
                    (
                        "b",
                        (0..ROWS as i64).map(|i| (i * 31) % ROWS as i64).collect(),
                    ),
                ],
            )
            .unwrap();
        let cols = db.column_ids(t).unwrap();
        let counts = replay(&mut db, &cols, &trace);
        match &reference {
            None => reference = Some(counts),
            Some(expected) => assert_eq!(&counts, expected, "{strategy} diverged"),
        }
    }
}

#[test]
fn bursty_sessions_alternate_queries_and_idle_windows_when_replayed() {
    let mut generator = UniformRangeGenerator::new(0, 1, ROWS as i64, 0.01);
    let mut rng = StdRng::seed_from_u64(13);
    let events = SessionBuilder::new(ArrivalModel::Bursty {
        burst_len: 20,
        actions: 30,
    })
    .build(&mut generator, 100, &mut rng);
    let trace = QueryTrace::from_events(events);
    assert_eq!(trace.query_count(), 100);
    assert_eq!(trace.len() - trace.query_count(), 4); // 4 idle gaps between 5 bursts

    let (mut db, cols) = build_db();
    let counts = replay(&mut db, &cols, &trace);
    assert_eq!(counts.len(), 100);
    // Idle gaps were actually exploited by the holistic engine.
    assert!(db.metrics().auxiliary_actions() >= 4 * 30);
}

#[test]
fn idle_only_trace_still_tunes_the_database() {
    let trace = QueryTrace::from_events(vec![
        WorkloadEvent::Idle(IdleWindow::Actions(100)),
        WorkloadEvent::Idle(IdleWindow::Actions(100)),
    ]);
    let (mut db, cols) = build_db();
    let counts = replay(&mut db, &cols, &trace);
    assert!(counts.is_empty());
    // Even with zero workload knowledge, catalog knowledge lets the kernel
    // spread refinement actions over the loaded columns ("no knowledge" case).
    assert!(db.metrics().auxiliary_actions() > 0);
    assert!(db.piece_count(cols[0]) > 1 || db.piece_count(cols[1]) > 1);
}
