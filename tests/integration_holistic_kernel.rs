//! Integration tests for the holistic machinery itself: idle-time
//! exploitation, the ranking model end to end, hot-range boosting and the
//! background tuner — the behaviours that distinguish holistic indexing
//! from its three ancestors.

use std::sync::Arc;
use std::time::Duration;

use holistic_core::background::{BackgroundConfig, BackgroundTuner};
use holistic_core::{Database, HolisticConfig, IdleBudget, IndexingStrategy, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 30_000;

fn dataset(seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ROWS).map(|_| rng.gen_range(1..=ROWS as i64)).collect()
}

fn holistic_db(columns: usize) -> (Database, Vec<holistic_core::ColumnId>) {
    let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
    let names: Vec<String> = (0..columns).map(|i| format!("a{i}")).collect();
    let data: Vec<(&str, Vec<i64>)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), dataset(i as u64)))
        .collect();
    let t = db.create_table("r", data).unwrap();
    let cols = db.column_ids(t).unwrap();
    (db, cols)
}

#[test]
fn idle_time_reduces_future_query_work() {
    // Two identical engines see the same queries; one gets idle time first.
    let queries: Vec<(i64, i64)> = {
        let mut rng = StdRng::seed_from_u64(7);
        (0..100)
            .map(|_| {
                let lo = rng.gen_range(1..=(ROWS as i64 - ROWS as i64 / 50));
                (lo, lo + ROWS as i64 / 50)
            })
            .collect()
    };
    let (tuned, tuned_cols) = holistic_db(1);
    let (untuned, untuned_cols) = holistic_db(1);
    // Warm both with one query (so statistics exist), then grant idle time
    // to only one of them.
    tuned.execute(&Query::range(tuned_cols[0], 1, 100)).unwrap();
    untuned
        .execute(&Query::range(untuned_cols[0], 1, 100))
        .unwrap();
    let report = tuned.run_idle(IdleBudget::Actions(500));
    assert!(report.actions_applied > 0);
    let pieces_after_idle = tuned.piece_count(tuned_cols[0]);
    assert!(pieces_after_idle > untuned.piece_count(untuned_cols[0]));
    // Both answer the workload identically.
    for &(lo, hi) in &queries {
        let a = tuned.execute(&Query::range(tuned_cols[0], lo, hi)).unwrap();
        let b = untuned
            .execute(&Query::range(untuned_cols[0], lo, hi))
            .unwrap();
        assert_eq!(a.count, b.count);
    }
    // The tuned engine enters the workload with (much) finer pieces, so its
    // query-driven cracking has less left to do.
    assert!(pieces_after_idle >= 100 || report.converged);
}

#[test]
fn ranking_prefers_frequently_queried_columns() {
    let (db, cols) = holistic_db(4);
    // Column 0 is hot, column 3 is never touched.
    for i in 0..30 {
        let lo = 1 + (i * 700) % (ROWS as i64 - 600);
        db.execute(&Query::range(cols[0], lo, lo + 500)).unwrap();
        if i % 10 == 0 {
            db.execute(&Query::range(cols[1], lo, lo + 500)).unwrap();
        }
    }
    db.run_idle(IdleBudget::Actions(200));
    let hot = db.stats().column(cols[0]).unwrap().auxiliary_actions;
    let cold = db.stats().column(cols[3]).unwrap().auxiliary_actions;
    assert!(
        hot >= cold,
        "hot column got {hot} auxiliary actions, cold column got {cold}"
    );
    assert!(db.piece_count(cols[0]) >= db.piece_count(cols[3]));
}

#[test]
fn idle_tuning_converges_and_stops() {
    let (db, cols) = holistic_db(2);
    db.execute(&Query::range(cols[0], 1, 500)).unwrap();
    let mut total_actions = 0u64;
    let mut converged = false;
    for _ in 0..200 {
        let report = db.run_idle(IdleBudget::Actions(500));
        total_actions += report.actions_applied;
        if report.converged {
            converged = true;
            break;
        }
    }
    assert!(
        converged,
        "tuning never converged after {total_actions} actions"
    );
    // Once converged, further idle time is a no-op.
    let after = db.run_idle(IdleBudget::Actions(100));
    assert!(after.converged);
    assert_eq!(after.actions_applied, 0);
    // Every column ends with pieces at or below the cache target (on average).
    for &c in &cols {
        let activity = db.stats().column(c).unwrap();
        assert!(
            activity.avg_piece_len <= db.config().cache_piece_target as f64 * 2.0,
            "column {c} still has avg piece {}",
            activity.avg_piece_len
        );
    }
}

#[test]
fn hot_range_boost_refines_exactly_the_hot_region() {
    let (db, cols) = holistic_db(1);
    let hot_lo = ROWS as i64 / 2;
    let hot_hi = hot_lo + ROWS as i64 / 100;
    for _ in 0..12 {
        db.execute(&Query::range(cols[0], hot_lo, hot_hi)).unwrap();
    }
    let aux = db.stats().column(cols[0]).unwrap().auxiliary_actions;
    assert!(aux > 0, "hot range must trigger boost cracks");
    // Counts stay correct while boosting happens.
    let reference = {
        let (scan_db, scan_cols) = {
            let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::ScanOnly);
            let t = db.create_table("r", vec![("a0", dataset(0))]).unwrap();
            let cols = db.column_ids(t).unwrap();
            (db, cols)
        };
        scan_db
            .execute(&Query::range(scan_cols[0], hot_lo, hot_hi))
            .unwrap()
            .count
    };
    let again = db.execute(&Query::range(cols[0], hot_lo, hot_hi)).unwrap();
    assert_eq!(again.count, reference);
}

#[test]
fn background_tuner_and_foreground_queries_coexist() {
    let (db, cols) = holistic_db(2);
    db.execute(&Query::range(cols[0], 1, 300)).unwrap();
    let shared = db.into_shared();
    let tuner = BackgroundTuner::spawn(
        Arc::clone(&shared),
        BackgroundConfig {
            idle_threshold: Duration::from_millis(1),
            batch_actions: 16,
            poll_interval: Duration::from_micros(200),
            seed_prefix_sums: true,
            snapshot_on_idle: false,
            scrub_pieces: 64,
        },
    );
    // Interleave short bursts of queries with idle gaps.
    let mut rng = StdRng::seed_from_u64(3);
    let mut expected_counts = Vec::new();
    for burst in 0..5 {
        for _ in 0..10 {
            let lo = rng.gen_range(1..=(ROWS as i64 - 400));
            let count = shared
                .write()
                .execute(&Query::range(cols[burst % 2], lo, lo + 300))
                .unwrap()
                .count;
            expected_counts.push((burst % 2, lo, count));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let background_actions = tuner.stop();
    assert!(
        background_actions > 0,
        "idle gaps should have been exploited"
    );
    // Replay the recorded queries: answers must be unchanged by background work.
    let db = Arc::try_unwrap(shared).expect("tuner stopped").into_inner();
    for (col, lo, count) in expected_counts {
        let again = db.execute(&Query::range(cols[col], lo, lo + 300)).unwrap();
        assert_eq!(again.count, count);
    }
}

#[test]
fn observed_workload_can_drive_offline_preparation_later() {
    // "Some idle time and enough knowledge": knowledge gathered online is fed
    // into the offline machinery when a big idle window appears.
    let (mut db, cols) = holistic_db(3);
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..60 {
        let lo = rng.gen_range(1..=(ROWS as i64 - 700));
        db.execute(&Query::range(cols[0], lo, lo + 600)).unwrap();
    }
    let summary = db.observed_workload();
    assert!(summary.column(cols[0]).unwrap().queries >= 60);
    // A long idle window appears: build the full index the knowledge asks for.
    let report = db.prepare_offline(&summary, None);
    assert!(report.built.contains(&cols[0]));
    let r = db.execute(&Query::range(cols[0], 100, 800)).unwrap();
    assert_eq!(r.path, holistic_core::AccessPath::FullIndex);
}
