//! Umbrella crate for the holistic indexing kernel.
//!
//! Re-exports the workspace crates under one roof so the integration tests
//! and examples (and downstream users who want the whole system) need a
//! single dependency. See the individual crates for the actual machinery:
//!
//! * [`storage`] — main-memory column store and bulk scans.
//! * [`cracking`] — adaptive indexing (database cracking) kernels.
//! * [`offline`] — workload analysis, index advisor, full sorted indexes.
//! * [`online`] — epoch-based online index tuning.
//! * [`workload`] — query/idle-window workload generators and traces.
//! * [`core`] — the engine tying every strategy together.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use holistic_core as core;
pub use holistic_cracking as cracking;
pub use holistic_offline as offline;
pub use holistic_online as online;
pub use holistic_storage as storage;
pub use holistic_workload as workload;
